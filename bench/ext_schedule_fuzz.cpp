/**
 * @file
 * Schedule-fuzz smoke bench: drive the real barrier implementations
 * through randomized virtual-thread schedules until a time budget
 * runs out, with the phase-ordering oracle armed on every run.
 *
 * Unlike the reproduction benches this binary is red/green: it exits
 * non-zero the moment any schedule violates barrier semantics and
 * prints the barrier kind and seed needed to replay that exact
 * interleaving (--kind <name> --replay <seed>).  CI runs it as a
 * long-horizon nightly-style job; locally a few seconds suffice for
 * a smoke signal.
 *
 * It also runs the bounded exhaustive exploration of the smallest
 * interesting episode (2 threads x 2 phases) per barrier kind and
 * reports how many distinct interleavings were visited.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "runtime/barrier_interface.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

using namespace absync;

namespace
{

struct Kind
{
    const char *name;
    runtime::BarrierKind kind;
};

const std::vector<Kind> &
kinds()
{
    static const std::vector<Kind> k = {
        {"flat", runtime::BarrierKind::Flat},
        {"tangyew", runtime::BarrierKind::TangYew},
        {"tree", runtime::BarrierKind::Tree},
        {"adaptive", runtime::BarrierKind::Adaptive},
    };
    return k;
}

testing::BarrierEpisodeConfig
episodeConfig(runtime::BarrierKind kind, std::uint32_t threads,
              std::uint32_t phases)
{
    testing::BarrierEpisodeConfig cfg;
    cfg.kind = kind;
    cfg.parties = threads;
    cfg.phases = phases;
    return cfg;
}

[[noreturn]] void
reportFailure(const char *kind_name, std::uint64_t seed,
              std::uint32_t threads, std::uint32_t phases,
              const std::string &message)
{
    std::printf("\nFAIL: kind=%s seed=%llu: %s\n", kind_name,
                static_cast<unsigned long long>(seed),
                message.c_str());
    std::printf("replay: ext_schedule_fuzz --kind %s --replay %llu "
                "--threads %u --phases %u\n",
                kind_name, static_cast<unsigned long long>(seed),
                threads, phases);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const support::Options opt(argc, argv,
                               {"seconds", "threads", "phases",
                                "seed0", "kind", "replay"});
    const auto seconds = opt.getDouble("seconds", 5.0);
    const auto threads =
        static_cast<std::uint32_t>(opt.getInt("threads", 3));
    const auto phases =
        static_cast<std::uint32_t>(opt.getInt("phases", 3));
    const auto seed0 =
        static_cast<std::uint64_t>(opt.getInt("seed0", 1));

    bench::printHeader(
        "Schedule fuzz: randomized + exhaustive virtual schedules "
        "over the runtime barriers",
        "extension; oracle = phase ordering (skew <= 1, no lost "
        "arrival)");

    if (opt.has("replay")) {
        // Reproduce one seed against one kind, verbosely.
        const std::string name = opt.get("kind", "flat");
        const runtime::BarrierKind kind =
            runtime::barrierKindFromString(name);
        const auto seed =
            static_cast<std::uint64_t>(opt.getInt("replay", 1));
        const testing::RunRecord rec = testing::runSeededSchedule(
            testing::barrierPhasesFactory(
                episodeConfig(kind, threads, phases)),
            seed);
        std::printf("kind=%s seed=%llu steps=%llu choicePoints=%llu "
                    "ticks=%llu -> %s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(rec.steps),
                    static_cast<unsigned long long>(rec.choicePoints),
                    static_cast<unsigned long long>(rec.ticks),
                    rec.completed ? "ok" : rec.failure.c_str());
        return rec.completed ? 0 : 1;
    }

    // Phase 1: bounded exhaustive exploration of the smallest
    // interesting episode per kind.
    std::vector<std::uint64_t> interleavings;
    for (const Kind &k : kinds()) {
        testing::ExploreConfig xc;
        xc.branchDepth = 8;
        xc.maxRuns = 20000;
        const testing::ExploreReport rep = testing::exploreSchedules(
            testing::barrierPhasesFactory(
                episodeConfig(k.kind, 2, 2)),
            xc);
        if (rep.failed)
            reportFailure(k.name, 0, 2, 2,
                          rep.failure +
                              " (found by exhaustive exploration)");
        interleavings.push_back(rep.interleavings);
    }

    // Phase 2: seeded fuzz round-robin over the kinds until the time
    // budget is spent.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    std::vector<std::uint64_t> fuzz_runs(kinds().size(), 0);
    std::uint64_t next_seed = seed0;
    constexpr std::uint64_t kBatch = 25;
    while (std::chrono::steady_clock::now() < deadline) {
        for (std::size_t i = 0; i < kinds().size(); ++i) {
            testing::FuzzConfig fc;
            fc.runs = kBatch;
            fc.seed0 = next_seed;
            const testing::FuzzReport rep = testing::fuzzSchedules(
                testing::barrierPhasesFactory(
                    episodeConfig(kinds()[i].kind, threads, phases)),
                fc);
            fuzz_runs[i] += rep.runsDone;
            if (rep.failed)
                reportFailure(kinds()[i].name, rep.failingSeed,
                              threads, phases, rep.failure);
        }
        next_seed += kBatch;
    }

    support::Table table(
        {"kind", "2x2 interleavings", "fuzz runs", "result"});
    for (std::size_t i = 0; i < kinds().size(); ++i) {
        table.addRow({kinds()[i].name,
                      std::to_string(interleavings[i]),
                      std::to_string(fuzz_runs[i]), "ok"});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("seeds %llu..%llu clean; every run is replayable "
                "with --kind <name> --replay <seed>\n",
                static_cast<unsigned long long>(seed0),
                static_cast<unsigned long long>(next_seed - 1));
    return 0;
}
