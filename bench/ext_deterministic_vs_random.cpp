/**
 * @file
 * Ablation: deterministic vs randomized flag backoff (Section 4.2).
 *
 * The paper rejects the Aloha/Ethernet-style randomized retry in
 * favour of a deterministic schedule, arguing (1) it costs a few
 * instructions rather than a retry-probability computation, and
 * (2) once contenders are serialized, equal backoffs keep them
 * serialized while random retries destroy the ordering and re-create
 * contention.  This bench randomizes each wait over [1, 2W] and
 * measures the damage.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 200));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 42));
    const unsigned jobs = jobsOption(opts);

    printHeader("Ablation: deterministic vs randomized flag backoff",
                "Agarwal & Cherian 1989, Section 4.2 argument");

    for (std::uint64_t base : {2ull, 8ull}) {
        support::Table t({"N", "A", "det accesses", "rand accesses",
                          "det wait", "rand wait"});
        for (std::uint32_t n : {16u, 64u, 256u}) {
            for (std::uint64_t a : {100ull, 1000ull}) {
                auto det = core::BackoffConfig::exponentialFlag(base);
                auto rnd = det;
                rnd.randomized = true;
                const double det_acc = barrierCell(
                    n, a, det, Metric::Accesses, runs, seed, jobs);
                const double rnd_acc = barrierCell(
                    n, a, rnd, Metric::Accesses, runs, seed, jobs);
                const double det_wait =
                    barrierCell(n, a, det, Metric::Wait, runs, seed, jobs);
                const double rnd_wait =
                    barrierCell(n, a, rnd, Metric::Wait, runs, seed, jobs);
                t.addRow({std::to_string(n), std::to_string(a),
                          support::fmt(det_acc, 1),
                          support::fmt(rnd_acc, 1),
                          support::fmt(det_wait, 0),
                          support::fmt(rnd_wait, 0)});
            }
        }
        std::printf("\nexponential base %llu:\n%s",
                    static_cast<unsigned long long>(base),
                    t.str().c_str());
    }

    std::printf("\nReading: both are far better than no backoff; the "
                "deterministic schedule's advantage appears as lower "
                "or equal access counts at the same wait — random "
                "waits re-randomize the serialized re-poll order.\n");
    return 0;
}
