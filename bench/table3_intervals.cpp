/**
 * @file
 * Table 3: average A (cycles between first and last arrival at a
 * barrier/wait) and E (cycles between barriers) for the three
 * applications at 16 and 64 processors.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "common/trace_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"scale"});
    const double scale = opts.getDouble("scale", 0.25);

    printHeader("Table 3: barrier arrival window A and inter-barrier "
                "interval E",
                "Agarwal & Cherian 1989, Table 3 / Section 5");

    std::printf("\nPaper reference:\n"
                "  SIMPLE  16p A=7021  E=2007   | 64p A=7067  "
                "E=6195\n"
                "  WEATHER 16p A=82754 E=495298 | 64p A=82787 "
                "E=82716\n"
                "  FFT     16p A=237   E=228073 | 64p A=285   "
                "E=57997\n\n");

    support::Table t({"app", "procs", "A", "E", "E/A", "barriers"});
    for (const auto &app : appNames()) {
        for (std::uint32_t procs : {16u, 64u}) {
            const auto st = scheduleApp(app, procs, scale);
            t.addRow({app, std::to_string(procs),
                      support::fmt(st.averageA(), 0),
                      support::fmt(st.averageE(), 0),
                      support::fmt(st.averageE() /
                                       std::max(st.averageA(), 1.0),
                                   2),
                      std::to_string(st.barriers.size())});
        }
    }
    std::printf("%s", t.str().c_str());

    std::printf("\nShape checks (absolute cycle counts differ — our "
                "iterations are scaled):\n"
                "  - FFT: E/A huge; A grows with processor count "
                "(F&A serialization);\n"
                "  - SIMPLE: A roughly constant in P; A ~ E at 64 "
                "processors;\n"
                "  - WEATHER: A constant in P; E shrinks to ~A at 64 "
                "processors.\n");
    return 0;
}
