/**
 * @file
 * Section 2: the naive one-variable barrier vs Tang & Yew's
 * two-variable scheme.
 *
 * "A typical implementation of a barrier might use a shared variable
 * ... it repeatedly tests the barrier until the above condition is
 * true ... This implementation has the drawback that each processor
 * attempting to increment the barrier variable must contend with all
 * the others simply polling it.  A better implementation, e.g., Tang
 * and Yew's, splits the barrier into two shared variables."
 *
 * This bench quantifies the claim — and a nuance the paper leaves
 * implicit: the penalty depends on the module's arbitration.  Under
 * random service the poller horde crowds out arriving incrementers
 * (the paper's picture); under queued (FIFO) service arrivals take
 * their place in line and the one-variable barrier is actually fine.
 * Either way, adaptive backoff rescues the naive barrier too.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "n", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 2));
    const unsigned jobs = jobsOption(opts);
    const auto n = static_cast<std::uint32_t>(opts.getInt("n", 64));

    printHeader("Section 2: one-variable vs two-variable barrier",
                "Agarwal & Cherian 1989, Section 2");

    for (auto arb : {sim::Arbitration::Random,
                     sim::Arbitration::Fifo}) {
        support::Table t({"A", "one-var accesses", "two-var accesses",
                          "one-var + exp2", "two-var + exp2"});
        for (std::uint64_t a : {0ull, 100ull, 1000ull}) {
            std::vector<double> row;
            for (const char *policy : {"none", "exp2"}) {
                for (bool single : {true, false}) {
                    core::BarrierConfig cfg;
                    cfg.processors = n;
                    cfg.arrivalWindow = a;
                    cfg.singleVariable = single;
                    cfg.arbitration = arb;
                    cfg.backoff =
                        core::BackoffConfig::fromString(policy);
                    const auto s = core::BarrierSimulator(cfg)
                                       .runMany(runs, seed, jobs);
                    row.push_back(s.accesses.mean());
                }
            }
            t.addRow(std::to_string(a), row);
        }
        std::printf("\nN = %u, %s arbitration:\n%s", n,
                    arb == sim::Arbitration::Random ? "random"
                                                    : "fifo",
                    t.str().c_str());
    }

    std::printf(
        "\nReading: under random service the naive barrier costs ~2x "
        "(incrementers fight the poller horde — the paper's Section 2 "
        "drawback); queued service neutralizes it by construction.  "
        "Exponential backoff cuts both schemes by an order of "
        "magnitude regardless — thinning the polls helps whichever "
        "barrier you have.\n");
    return 0;
}
