/**
 * @file
 * Section 8 extension: backoff in the network controller itself.
 *
 * The paper's base model retries a denied access every cycle ("the
 * access is repeated until the flag is read") and counts each retry;
 * Section 8 proposes letting the *network controller* back off when
 * accesses keep colliding.  This bench adds exponential controller
 * backoff (wait base^k after the k-th consecutive denial) under the
 * barrier episode model, with and without the software-level flag
 * backoff, and reports the access/wait tradeoff.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 61));
    const unsigned jobs = jobsOption(opts);

    printHeader("Section 8 extension: network-controller backoff on "
                "denied accesses",
                "Agarwal & Cherian 1989, Sections 4.2 & 8");

    for (std::uint32_t n : {64u, 256u}) {
        for (std::uint64_t a : {0ull, 100ull}) {
            support::Table t({"policy", "accesses/proc",
                              "wait/proc"});
            for (const char *policy : {"none", "exp2"}) {
                for (bool ctrl : {false, true}) {
                    auto bo = core::BackoffConfig::fromString(policy);
                    bo.controllerBackoff = ctrl;
                    const double acc = barrierCell(
                        n, a, bo, Metric::Accesses, runs, seed, jobs);
                    const double wait = barrierCell(
                        n, a, bo, Metric::Wait, runs, seed, jobs);
                    t.addRow({std::string(policy) +
                                  (ctrl ? " + controller" : ""),
                              support::fmt(acc, 1),
                              support::fmt(wait, 1)});
                }
            }
            std::printf("\nN = %u, A = %llu:\n%s", n,
                        static_cast<unsigned long long>(a),
                        t.str().c_str());
        }
    }

    std::printf("\nReading: controller backoff removes the "
                "denied-retry traffic that software flag backoff "
                "cannot see (retries happen below the backoff "
                "decision points) — a ~10-25x access cut.  At "
                "moderate windows it even shortens waits (less "
                "self-contention); at A = 0 it pays ~2x wait, the "
                "usual tradeoff.  Note the releasing write must be "
                "exempt from controller backoff or pollers starve "
                "it outright.\n");
    return 0;
}
