/**
 * @file
 * Section 8 extension: waiter-proportional backoff on a resource,
 * measured with real threads.
 *
 * "Processors waiting to access a resource can backoff testing the
 * resource by an amount proportional to the number of processors
 * waiting.  Adaptive techniques will likely perform much better in
 * this situation than with barrier synchronizations because the
 * amount of time a processor has to wait at a resource is directly
 * proportional to the number of processors waiting."
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/bench_util.hpp"
#include "runtime/resource_pool.hpp"
#include "runtime/spin_backoff.hpp"

using namespace absync;
using namespace absync::bench;
using namespace absync::runtime;

namespace
{

struct Result
{
    double seconds;
    std::uint64_t polls;
};

Result
contend(ResourcePolicy policy, unsigned threads, unsigned iters,
        std::uint64_t hold)
{
    BackoffResource res(1, policy, 128);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (unsigned i = 0; i < iters; ++i) {
                res.acquire();
                spinFor(hold); // the critical section
                res.release();
            }
        });
    }
    for (auto &th : pool)
        th.join();
    const auto end = std::chrono::steady_clock::now();
    return {std::chrono::duration<double>(end - start).count(),
            res.totalPolls()};
}

const char *
policyName(ResourcePolicy p)
{
    switch (p) {
      case ResourcePolicy::Spin:
        return "spin";
      case ResourcePolicy::Proportional:
        return "waiter-proportional";
      case ResourcePolicy::Exponential:
        return "exponential";
      case ResourcePolicy::Adaptive:
        return "adaptive";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"iters", "hold"});
    const auto iters =
        static_cast<unsigned>(opts.getInt("iters", 2000));
    const auto hold =
        static_cast<std::uint64_t>(opts.getInt("hold", 400));

    printHeader("Section 8 extension: resource-waiting backoff "
                "(real threads)",
                "Agarwal & Cherian 1989, Section 8");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("\nhardware threads: %u; critical section ~%llu "
                "pause-iterations\n",
                hw, static_cast<unsigned long long>(hold));

    for (unsigned threads : {2u, 4u, 8u}) {
        support::Table t({"policy", "wall seconds",
                          "shared polls", "polls/acquire"});
        for (auto p : {ResourcePolicy::Spin,
                       ResourcePolicy::Exponential,
                       ResourcePolicy::Proportional,
                       ResourcePolicy::Adaptive}) {
            const auto r = contend(p, threads, iters, hold);
            t.addRow({policyName(p), support::fmt(r.seconds, 3),
                      std::to_string(r.polls),
                      support::fmt(static_cast<double>(r.polls) /
                                       (threads * iters),
                                   2)});
        }
        std::printf("\n%u threads x %u acquisitions:\n%s", threads,
                    iters, t.str().c_str());
    }

    std::printf("\nReading: every backoff policy cuts shared polls "
                "per acquisition by orders of magnitude at equal or "
                "better wall time.  Exponential polls least; waiter-"
                "proportional stays within a few polls while bounding "
                "the worst-case sleep by the actual queue length — "
                "the state-driven adaptivity Section 8 argues for.  "
                "The contention-feedback schedule (DESIGN.md 17) "
                "matches exponential's poll economy and wins wall "
                "time once threads outnumber cores, by escalating "
                "waiters to yield/park instead of spinning.\n");
    return 0;
}
