/**
 * @file
 * Figure 3: distribution of processor arrival times within the
 * barrier window A.
 *
 * The paper plots arrival histograms for FFT/SIMPLE/WEATHER at 16
 * processors: FFT is roughly uniform; SIMPLE is skewed towards the
 * beginning and end of the interval (uneven load balance sends
 * workless processors to the barrier immediately).  This uniformity
 * is what justifies the uniform-arrival assumption of the barrier
 * model (Section 5).
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "common/trace_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"procs", "scale", "bins"});
    const auto procs =
        static_cast<std::uint32_t>(opts.getInt("procs", 16));
    const double scale = opts.getDouble("scale", 0.25);
    const auto bins =
        static_cast<std::size_t>(opts.getInt("bins", 10));

    printHeader("Figure 3: arrival distribution within the window A",
                "Agarwal & Cherian 1989, Figure 3 / Section 5");

    for (const auto &app : appNames()) {
        const auto st = scheduleApp(app, procs, scale);
        const auto hist = st.arrivalDistribution(bins);
        std::printf("\n%s (%u procs, normalized window [0,1]):\n%s",
                    app.c_str(), procs,
                    hist.asciiChart(48).c_str());
        const double edges = hist.binFraction(0) +
                             hist.binFraction(bins - 1);
        std::printf("  mass in first+last bins: %.1f%% "
                    "(uniform would be %.1f%%)\n",
                    edges * 100.0, 200.0 / static_cast<double>(bins));
    }

    std::printf("\nShape check: FFT close to uniform; SIMPLE/WEATHER "
                "skewed to the window edges.\n");
    return 0;
}
