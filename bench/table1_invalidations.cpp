/**
 * @file
 * Table 1: percentage of synchronization and non-synchronization
 * references that cause invalidations, under Dir_iNB directories
 * with i = 2, 3, 4, 5 and a full map, for FFT / SIMPLE / WEATHER at
 * 64 processors.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "common/trace_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"procs", "scale"});
    const auto procs =
        static_cast<std::uint32_t>(opts.getInt("procs", 64));
    const double scale = opts.getDouble("scale", 0.25);

    printHeader("Table 1: references causing invalidations (%)",
                "Agarwal & Cherian 1989, Table 1 / Section 2.1");

    std::printf("\nPaper reference (SIMPLE): non-sync 8.5->5.2%%, "
                "sync ~99%% for i in 2..5; sync references were "
                "0.2%% (FFT), 7.9%% (WEATHER), 5.3%% (SIMPLE) of "
                "data references.\n\n");

    for (const auto &app : appNames()) {
        support::Table t({"pointers", "non-sync %", "sync %"});
        for (std::uint32_t ptr : pointerCounts()) {
            coherence::CoherenceConfig cfg;
            cfg.processors = procs;
            cfg.pointerLimit = ptr;
            const auto st = simulateApp(app, procs, scale, cfg);
            t.addRow(ptr == 0 ? std::string("full")
                              : std::to_string(ptr),
                     {st.nonSyncInvalidatingFraction() * 100.0,
                      st.syncInvalidatingFraction() * 100.0});
        }
        const auto sched = scheduleApp(app, procs, scale);
        std::printf("%s (%u procs): sync references are %.2f%% of "
                    "the trace's data references\n%s\n",
                    app.c_str(), procs,
                    sched.syncFraction() * 100.0, t.str().c_str());
    }

    std::printf("Shape checks: sync columns near 99%% for small i "
                "and lower at full map; non-sync column decreases "
                "as pointers increase; sync >> non-sync "
                "everywhere.\n");
    return 0;
}
