/**
 * @file
 * Section 8 extension: backoff strategies for collided accesses in
 * an unbuffered circuit-switched multistage network.
 *
 * The paper proposes (but does not evaluate) five strategies for the
 * retry delay after a circuit-setup collision: depth-proportional,
 * inverse-depth, constant round-trip, exponential-in-failures, and
 * Scott-Sohi queue feedback; it explicitly suggests "simulations can
 * be used to study the tradeoffs involved".  This bench runs those
 * simulations on an Omega network under uniform and hot-spot traffic.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "sim/multistage.hpp"

using namespace absync;
using namespace absync::bench;
using namespace absync::sim;

namespace
{

void
sweep(double hotspot, std::uint32_t procs, std::uint64_t cycles,
      std::uint64_t seed)
{
    const std::vector<NetBackoff> strategies = {
        NetBackoff::Immediate,     NetBackoff::DepthProportional,
        NetBackoff::InverseDepth,  NetBackoff::ConstantRtt,
        NetBackoff::Exponential,   NetBackoff::QueueFeedback,
    };
    const std::vector<double> loads = {0.1, 0.3, 0.5, 0.8};

    for (double load : loads) {
        support::Table t({"strategy", "throughput/proc", "latency",
                          "attempts/req", "collision depth"});
        for (NetBackoff s : strategies) {
            MultistageConfig cfg;
            cfg.processors = procs;
            cfg.offeredLoad = load;
            cfg.hotspotFraction = hotspot;
            cfg.strategy = s;
            cfg.cycles = cycles;
            cfg.seed = seed;
            const auto st = MultistageNetwork(cfg).run();
            t.addRow({netBackoffName(s),
                      support::fmt(st.throughput, 4),
                      support::fmt(st.avgLatency, 1),
                      support::fmt(st.attemptsPerRequest, 2),
                      support::fmt(st.avgCollisionDepth, 2)});
        }
        std::printf("\noffered load %.1f, hotspot %.0f%%:\n%s",
                    load, hotspot * 100.0, t.str().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"procs", "cycles", "seed"});
    const auto procs =
        static_cast<std::uint32_t>(opts.getInt("procs", 64));
    const auto cycles =
        static_cast<std::uint64_t>(opts.getInt("cycles", 20000));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 88));

    printHeader("Section 8 extension: network-access backoff in a "
                "circuit-switched Omega network",
                "Agarwal & Cherian 1989, Section 8 items (1)-(5)");

    std::printf("\n--- uniform traffic ---\n");
    sweep(0.0, procs, cycles, seed);

    std::printf("\n--- hot-spot traffic (30%% to module 0) ---\n");
    sweep(0.3, procs, cycles, seed);

    std::printf("\nReading: every backoff strategy cuts attempts per "
                "request vs immediate retry under congestion; the "
                "queue-feedback strategy targets exactly the hot "
                "module's backlog (Scott & Sohi).\n");
    return 0;
}
