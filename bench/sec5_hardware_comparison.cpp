/**
 * @file
 * Section 5.1: software backoff vs hardware synchronization support.
 *
 * The paper gives per-processor access counts per barrier for
 * hardware assists — invalidating bus ~3, updating bus ~2, limited
 * directory ~4, Hoshino global synchronization gate ~1 — and argues
 * that backoff barriers approach those counts "with no extra
 * hardware" when N is small relative to A (A=0 & N<8, A=100 & N<32,
 * A=1000 & N<128), but lose badly when N is large and A small.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "core/models.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 55));
    const unsigned jobs = jobsOption(opts);

    printHeader("Section 5.1: hardware schemes vs software backoff",
                "Agarwal & Cherian 1989, Section 5.1 / Section 6.2");

    std::printf("\nHardware support (accesses per processor per "
                "barrier):\n");
    support::Table hw({"scheme", "accesses/proc"});
    for (auto s : {core::HardwareScheme::HoshinoGate,
                   core::HardwareScheme::UpdatingBus,
                   core::HardwareScheme::InvalidatingBus,
                   core::HardwareScheme::Directory}) {
        hw.addRow(core::hardwareSchemeName(s),
                  {core::hardwareAccessesPerProc(s)});
    }
    std::printf("%s", hw.str().c_str());

    std::printf("\nSoftware adaptive backoff (base-8 flag backoff), "
                "accesses per processor per barrier:\n");
    support::Table sw({"A", "N=4", "N=8", "N=32", "N=128", "N=512"});
    for (std::uint64_t a : {0ull, 100ull, 1000ull}) {
        std::vector<double> row;
        for (std::uint32_t n : {4u, 8u, 32u, 128u, 512u}) {
            row.push_back(barrierCell(
                n, a, core::BackoffConfig::exponentialFlag(8),
                Metric::Accesses, runs, seed, jobs));
        }
        sw.addRow(std::to_string(a), row);
    }
    std::printf("%s", sw.str().c_str());

    std::printf(
        "\nPaper: backoff \"compares reasonably with ... the bus-"
        "based schemes, the broadcast based schemes, or the Hoshino "
        "scheme\" for A=0 & N<8, A=100 & N<32, A=1000 & N<128; "
        "\"when A is smaller or N is larger, the backoff schemes "
        "tend to do much worse\".\n");
    return 0;
}
