/**
 * @file
 * Shared plumbing for the trace-driven benches (Tables 1-3,
 * Figures 1 and 3): application trace generation plus scheduling and
 * coherence simulation in one call.
 */

#ifndef ABSYNC_BENCH_COMMON_TRACE_UTIL_HPP
#define ABSYNC_BENCH_COMMON_TRACE_UTIL_HPP

#include <cstdint>
#include <string>

#include "coherence/coherence_sim.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"

namespace absync::bench
{

/** The three applications of the paper's evaluation. */
const std::vector<std::string> &appNames();

/** The directory pointer counts of Tables 1 and 2 (0 = full map). */
const std::vector<std::uint32_t> &pointerCounts();

/** Parse-and-cache an application's SPMD program. */
const trace::SpmdProgram &appProgram(const std::string &name,
                                     double scale);

/** Schedule an app onto @p procs processors, returning the interval
 *  statistics (no coherence simulation). */
trace::ScheduleStats scheduleApp(const std::string &name,
                                 std::uint32_t procs, double scale);

/**
 * Schedule an app and drive the coherence simulator with the
 * resulting reference stream.
 *
 * @return the coherence statistics after the full trace
 */
coherence::CoherenceStats simulateApp(
    const std::string &name, std::uint32_t procs, double scale,
    const coherence::CoherenceConfig &cfg);

} // namespace absync::bench

#endif // ABSYNC_BENCH_COMMON_TRACE_UTIL_HPP
