/**
 * @file
 * Shared plumbing for the reproduction benches.
 *
 * Every bench binary prints (a) the experiment's configuration, (b) a
 * table in the same rows/series shape as the paper's table or figure,
 * and (c) the paper's own headline numbers for side-by-side reading.
 */

#ifndef ABSYNC_BENCH_COMMON_BENCH_UTIL_HPP
#define ABSYNC_BENCH_COMMON_BENCH_UTIL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "core/barrier_sim.hpp"
#include "obs/run_report.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace absync::bench
{

/**
 * Parse --jobs from @p opts (default 1 = serial; 0 = one worker per
 * hardware thread).  Callers must list "jobs" among their known
 * option names.
 */
unsigned jobsOption(const support::Options &opts);

/** Policy set used by Figures 5-10: none, variable, flag base 2/4/8. */
const std::vector<std::string> &figurePolicies();

/** Processor counts used by Figures 4-10: 2, 4, ..., 512. */
const std::vector<std::uint32_t> &figureProcessorCounts();

/** Which episode metric a barrier table reports. */
enum class Metric
{
    Accesses, ///< network accesses per processor (Figures 4-7)
    Wait,     ///< waiting time per processor in cycles (Figures 8-10)
};

/**
 * Run the Figures 5-10 sweep for one arrival window.
 *
 * @param arrival_window the A parameter
 * @param metric which metric to tabulate
 * @param runs episodes per configuration (paper: 100)
 * @param seed RNG seed
 * @param report when non-null, every cell is also recorded as a
 *        run-report metric "<accesses|wait>.n<N>.<policy>" so the
 *        regression gate (scripts/check_regression.py) can compare
 *        sweeps run-to-run
 * @param jobs episode-level worker threads per cell (0 = hardware
 *        threads, 1 = serial).  Purely a throughput knob: runMany's
 *        deterministic fold makes every cell bitwise identical for
 *        any value, so --jobs never changes a reported number.
 * @return table with one row per N and one column per policy
 */
support::Table barrierSweepTable(std::uint64_t arrival_window,
                                 Metric metric, std::uint64_t runs,
                                 std::uint64_t seed,
                                 obs::RunReport *report = nullptr,
                                 unsigned jobs = 1);

/** Full episode summary for one (N, A, policy) cell. */
core::EpisodeSummary barrierSummary(std::uint32_t n,
                                    std::uint64_t arrival_window,
                                    const core::BackoffConfig &backoff,
                                    std::uint64_t runs,
                                    std::uint64_t seed,
                                    unsigned jobs = 1);

/** Mean of the chosen metric for one (N, A, policy) cell. */
double barrierCell(std::uint32_t n, std::uint64_t arrival_window,
                   const core::BackoffConfig &backoff, Metric metric,
                   std::uint64_t runs, std::uint64_t seed,
                   unsigned jobs = 1);

/**
 * Attach a contention profile ("profile" section) for one headline
 * cell to @p report: per-module heat plus the waiting-time
 * distribution (named "wait.n<N>.<policy>").
 */
void addBarrierProfileSection(obs::RunReport &report, std::uint32_t n,
                              std::uint64_t arrival_window,
                              const std::string &policy,
                              std::uint64_t runs, std::uint64_t seed);

/**
 * Honour --report-out: when present, write @p report there and print
 * a one-line confirmation.  Exits nonzero on I/O failure so a CI
 * export can't fail silently.
 */
void maybeWriteRunReport(const support::Options &opts,
                         const obs::RunReport &report);

/** Print the standard bench header. */
void printHeader(const std::string &title, const std::string &paper_ref);

} // namespace absync::bench

#endif // ABSYNC_BENCH_COMMON_BENCH_UTIL_HPP
