#include "common/trace_util.hpp"

#include <map>

#include "trace/apps.hpp"

namespace absync::bench
{

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> kApps = {"fft", "simple",
                                                   "weather"};
    return kApps;
}

const std::vector<std::uint32_t> &
pointerCounts()
{
    static const std::vector<std::uint32_t> kPointers = {2, 3, 4, 5,
                                                         0};
    return kPointers;
}

const trace::SpmdProgram &
appProgram(const std::string &name, double scale)
{
    static std::map<std::pair<std::string, double>,
                    trace::SpmdProgram>
        cache;
    auto key = std::make_pair(name, scale);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, trace::SpmdProgram::parse(
                                   trace::makeAppTrace(name, scale)))
                 .first;
    }
    return it->second;
}

trace::ScheduleStats
scheduleApp(const std::string &name, std::uint32_t procs, double scale)
{
    return trace::PostMortemScheduler(appProgram(name, scale), procs)
        .run();
}

coherence::CoherenceStats
simulateApp(const std::string &name, std::uint32_t procs, double scale,
            const coherence::CoherenceConfig &cfg)
{
    coherence::CoherenceSimulator sim(cfg);
    trace::PostMortemScheduler(appProgram(name, scale), procs)
        .run([&](const trace::MpRef &r) { sim.access(r); });
    return sim.stats();
}

} // namespace absync::bench
