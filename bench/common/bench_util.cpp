#include "common/bench_util.hpp"

#include <cstdio>

namespace absync::bench
{

const std::vector<std::string> &
figurePolicies()
{
    static const std::vector<std::string> kPolicies = {
        "none", "var", "exp2", "exp4", "exp8",
    };
    return kPolicies;
}

const std::vector<std::uint32_t> &
figureProcessorCounts()
{
    static const std::vector<std::uint32_t> kCounts = {
        2, 4, 8, 16, 32, 64, 128, 256, 512,
    };
    return kCounts;
}

double
barrierCell(std::uint32_t n, std::uint64_t arrival_window,
            const core::BackoffConfig &backoff, Metric metric,
            std::uint64_t runs, std::uint64_t seed)
{
    core::BarrierConfig cfg;
    cfg.processors = n;
    cfg.arrivalWindow = arrival_window;
    cfg.backoff = backoff;
    const auto summary =
        core::BarrierSimulator(cfg).runMany(runs, seed);
    return metric == Metric::Accesses ? summary.accesses.mean()
                                      : summary.wait.mean();
}

support::Table
barrierSweepTable(std::uint64_t arrival_window, Metric metric,
                  std::uint64_t runs, std::uint64_t seed)
{
    std::vector<std::string> header = {"N"};
    for (const auto &p : figurePolicies())
        header.push_back(p);
    support::Table table(std::move(header));

    for (std::uint32_t n : figureProcessorCounts()) {
        std::vector<double> row;
        for (const auto &policy : figurePolicies()) {
            row.push_back(barrierCell(
                n, arrival_window,
                core::BackoffConfig::fromString(policy), metric, runs,
                seed));
        }
        table.addRow(std::to_string(n), row);
    }
    return table;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("==============================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==============================================="
                "=============\n");
}

} // namespace absync::bench
