#include "common/bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/profile.hpp"

namespace absync::bench
{

const std::vector<std::string> &
figurePolicies()
{
    static const std::vector<std::string> kPolicies = {
        "none", "var", "exp2", "exp4", "exp8", "queue",
    };
    return kPolicies;
}

const std::vector<std::uint32_t> &
figureProcessorCounts()
{
    static const std::vector<std::uint32_t> kCounts = {
        2, 4, 8, 16, 32, 64, 128, 256, 512,
    };
    return kCounts;
}

unsigned
jobsOption(const support::Options &opts)
{
    return static_cast<unsigned>(opts.getInt("jobs", 1));
}

core::EpisodeSummary
barrierSummary(std::uint32_t n, std::uint64_t arrival_window,
               const core::BackoffConfig &backoff, std::uint64_t runs,
               std::uint64_t seed, unsigned jobs)
{
    core::BarrierConfig cfg;
    cfg.processors = n;
    cfg.arrivalWindow = arrival_window;
    cfg.backoff = backoff;
    return core::BarrierSimulator(cfg).runMany(runs, seed, jobs);
}

double
barrierCell(std::uint32_t n, std::uint64_t arrival_window,
            const core::BackoffConfig &backoff, Metric metric,
            std::uint64_t runs, std::uint64_t seed, unsigned jobs)
{
    const auto summary =
        barrierSummary(n, arrival_window, backoff, runs, seed, jobs);
    return metric == Metric::Accesses ? summary.accesses.mean()
                                      : summary.wait.mean();
}

support::Table
barrierSweepTable(std::uint64_t arrival_window, Metric metric,
                  std::uint64_t runs, std::uint64_t seed,
                  obs::RunReport *report, unsigned jobs)
{
    const char *metric_key =
        metric == Metric::Accesses ? "accesses" : "wait";
    std::vector<std::string> header = {"N"};
    for (const auto &p : figurePolicies())
        header.push_back(p);
    support::Table table(std::move(header));

    for (std::uint32_t n : figureProcessorCounts()) {
        std::vector<double> row;
        for (const auto &policy : figurePolicies()) {
            const double cell = barrierCell(
                n, arrival_window,
                core::BackoffConfig::fromString(policy), metric, runs,
                seed, jobs);
            row.push_back(cell);
            if (report != nullptr) {
                report->addMetric(std::string(metric_key) + ".n" +
                                      std::to_string(n) + "." + policy,
                                  cell);
            }
        }
        table.addRow(std::to_string(n), row);
    }
    return table;
}

void
addBarrierProfileSection(obs::RunReport &report, std::uint32_t n,
                         std::uint64_t arrival_window,
                         const std::string &policy, std::uint64_t runs,
                         std::uint64_t seed)
{
    const auto summary = barrierSummary(
        n, arrival_window, core::BackoffConfig::fromString(policy),
        runs, seed);
    obs::ProfileBuilder profile;
    for (const auto &m : summary.moduleHeat)
        profile.addModule(m);
    profile.addWait("wait.n" + std::to_string(n) + "." + policy,
                    summary.waitProfile.summary());
    report.addSection("profile", profile.json());
}

void
maybeWriteRunReport(const support::Options &opts,
                    const obs::RunReport &report)
{
    if (!opts.has("report-out"))
        return;
    const std::string path = opts.get("report-out");
    if (!report.writeFile(path)) {
        std::fprintf(stderr, "failed to write run report to %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::printf("run report (%zu metrics) -> %s\n",
                report.metricCount(), path.c_str());
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("==============================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==============================================="
                "=============\n");
}

} // namespace absync::bench
