/**
 * @file
 * End-to-end experiment: adaptive backoff inside the applications'
 * own barrier code.
 *
 * Tables 1-3 measure the paper's applications with plain busy-wait
 * barriers; Sections 4-7 evaluate backoff on an isolated barrier
 * model.  This bench closes the loop the paper implies: rerun the
 * full FFT / SIMPLE / WEATHER traces with the barrier spin loops
 * using exponential backoff, and measure what happens to the
 * whole-application uncached synchronization traffic (the Table 2
 * metric) and to the makespan (the idle-time cost).
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "common/trace_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"procs", "scale"});
    const auto procs =
        static_cast<std::uint32_t>(opts.getInt("procs", 64));
    const double scale = opts.getDouble("scale", 0.25);

    printHeader("End-to-end: adaptive backoff inside the "
                "applications' barriers",
                "Agarwal & Cherian 1989, Sections 2+4 combined");

    for (const auto &app : appNames()) {
        support::Table t({"barrier code", "sync refs",
                          "sync traffic %", "makespan", "cost"});
        std::uint64_t base_makespan = 0;
        for (const char *policy : {"none", "var", "exp2", "exp8"}) {
            trace::ScheduleConfig scfg;
            scfg.pollBackoff = core::BackoffConfig::fromString(policy);

            trace::PostMortemScheduler sched(
                appProgram(app, scale), procs, scfg);
            coherence::CoherenceConfig ccfg;
            ccfg.processors = procs;
            ccfg.pointerLimit = 4;
            ccfg.uncachedSync = true;
            coherence::CoherenceSimulator sim(ccfg);
            const auto sstats = sched.run(
                [&](const trace::MpRef &r) { sim.access(r); });
            const auto &cstats = sim.stats();

            if (base_makespan == 0)
                base_makespan = sstats.cycles;
            t.addRow(
                {policy, std::to_string(cstats.syncRefs),
                 support::fmt(cstats.syncTrafficFraction() * 100.0,
                              1),
                 std::to_string(sstats.cycles),
                 support::fmt(
                     (static_cast<double>(sstats.cycles) /
                          static_cast<double>(base_makespan) -
                      1.0) *
                         100.0,
                     1) +
                     "%"});
        }
        std::printf("\n%s (%u procs, Dir4NB, sync uncached):\n%s",
                    app.c_str(), procs, t.str().c_str());
    }

    std::printf("\nReading: base-2 backoff in the applications' own "
                "spin loops removes ~80-90%% of SIMPLE's and "
                "WEATHER's synchronization traffic for a 10-14%% "
                "makespan penalty — the paper's isolated-barrier "
                "result carried through to whole programs.  Base 8 "
                "overshoots WEATHER's long windows (+129%% runtime): "
                "the access/idle tradeoff is real, which is why the "
                "base should be chosen per profile "
                "(bench/ext_policy_advisor).\n");
    return 0;
}
