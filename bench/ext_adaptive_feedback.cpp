/**
 * @file
 * Extension experiment: contention-feedback adaptive backoff on real
 * threads (DESIGN.md §17) — the runtime answer to the paper's "how
 * much backoff is right?" question when the answer changes while the
 * program runs.
 *
 * A goodput sweep drives one TasLock through every policy family at
 * threads × contention points:
 *
 *   exp2/exp4/exp8  fixed exponential backoff (ExpBackoff base b),
 *                   the paper's static schedules;
 *   adaptive        TasLock<AdaptiveSpinBackoff> over one shared
 *                   AdaptiveBackoffController — failed-CAS feedback
 *                   retunes base/cap online and the escalation ladder
 *                   (spin -> yield -> park) gives the core away when
 *                   spinning is known-useless;
 *   queue           McsLock, the local-spin FIFO family, for scale.
 *
 * TasLock is the vehicle on purpose: every failed attempt runs the
 * backoff policy, so the policies — not a shared poll loop — own the
 * whole wait.  On an oversubscribed host (threads > cores, the
 * interesting regime) the fixed spinners burn scheduling quanta the
 * holder needed, while the adaptive ladder escalates to yield/park;
 * that is the machine-independent win the gate pins.
 *
 * The final row closes the PR 9 loop end-to-end on real threads: a
 * holder stalls inside the lock while a waiter (wait heartbeat open)
 * escalates to the park rung, whose slices deliberately do not pulse
 * the heartbeat.  The live observatory's watchdog flags the frozen
 * epoch, publishes a Degraded edge through obs::RetuneHub
 * (publishRetune), and the waiter's controller must consume exactly
 * one trip-attributed retune (forced escalation + widened cap).
 *
 * Self-gates (exit 1):
 *  - high contention, 8 threads: adaptive goodput >= best fixed-exp;
 *  - uncontended (1 thread, low contention): adaptive goodput >=
 *    0.95x best fixed-exp (the feedback plumbing must be ~free);
 *  - stall row (telemetry builds): exactly one watchdog trip and
 *    exactly one trip-attributed retune.
 * ABSYNC_ADAPTIVE_GATE=off skips the goodput gates on exotic hosts.
 *
 * Modes:
 *   --report-out <path>  absync.run_report.v1 for the regression gate
 *                        (absync.adaptive_feedback.v1 baselines)
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.hpp"
#include "obs/heartbeat.hpp"
#include "obs/observatory.hpp"
#include "obs/retune.hpp"
#include "runtime/adaptive_backoff.hpp"
#include "runtime/queue_lock.hpp"
#include "runtime/spin_backoff.hpp"
#include "runtime/spinlock.hpp"
#include "support/table.hpp"

using namespace absync;
using namespace absync::bench;

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const std::vector<std::string> kPolicies = {"exp2", "exp4", "exp8",
                                            "adaptive", "queue"};

struct CellResult
{
    double goodput = 0.0; ///< acquisitions per second
    std::uint64_t acquires = 0;
    std::uint64_t retunes = 0; ///< adaptive policy only
};

/**
 * Drive @p threads workers through lock/work/unlock/outside-work for
 * @p durationNs and return acquisitions per second.  The lock calls
 * are indirected so every policy family (Lockable templates and the
 * tid-passing queue locks) runs the identical loop.
 */
CellResult
runLoop(const std::function<void(std::uint32_t)> &lockFn,
        const std::function<void(std::uint32_t)> &unlockFn,
        std::uint32_t threads, std::uint64_t critIters,
        std::uint64_t outsideIters, std::uint64_t durationNs)
{
    std::atomic<std::uint32_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> acquired(threads, 0);
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            ready.fetch_add(1, std::memory_order_acq_rel);
            while (!go.load(std::memory_order_acquire))
                runtime::cpuRelaxNative();
            std::uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                lockFn(t);
                runtime::spinForUncounted(critIters);
                unlockFn(t);
                ++n;
                if (outsideIters)
                    runtime::spinForUncounted(outsideIters);
            }
            acquired[t] = n;
        });
    }
    while (ready.load(std::memory_order_acquire) < threads)
        std::this_thread::yield();
    const std::uint64_t t0 = nowNs();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::nanoseconds(durationNs));
    stop.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    const std::uint64_t wallNs = nowNs() - t0;

    CellResult r;
    for (std::uint64_t n : acquired)
        r.acquires += n;
    r.goodput = wallNs == 0 ? 0.0
                            : static_cast<double>(r.acquires) * 1e9 /
                                  static_cast<double>(wallNs);
    return r;
}

/** One (policy, threads, contention) cell; fresh lock per call. */
CellResult
runCell(const std::string &policy, std::uint32_t threads,
        std::uint64_t critIters, std::uint64_t outsideIters,
        std::uint64_t durationNs)
{
    // The fixed schedules and the adaptive starting point share the
    // same knobs (initial 8, ceiling 2^15, threshold 2^12), so the
    // sweep compares control laws, not parameter choices.
    constexpr std::uint64_t kInitial = 8;
    constexpr std::uint64_t kMaxWait = 1 << 15;
    constexpr std::uint64_t kBlockThreshold = 1 << 12;

    if (policy == "adaptive") {
        runtime::AdaptiveBackoffConfig acfg =
            runtime::adaptiveConfigFrom(kInitial, kMaxWait,
                                        kBlockThreshold);
        acfg.parkSliceNs = 1'000'000;
        runtime::AdaptiveBackoffController ctl(acfg);
        runtime::TasLock<runtime::AdaptiveSpinBackoff> lock{
            runtime::AdaptiveSpinBackoff(ctl)};
        CellResult r =
            runLoop([&](std::uint32_t) { lock.lock(); },
                    [&](std::uint32_t) { lock.unlock(); }, threads,
                    critIters, outsideIters, durationNs);
        r.retunes = ctl.retunes();
        return r;
    }
    if (policy == "queue") {
        runtime::QueueLockConfig qcfg;
        qcfg.maxThreads = threads;
        runtime::McsLock lock(qcfg);
        return runLoop([&](std::uint32_t t) { lock.lock(t); },
                       [&](std::uint32_t t) { lock.unlock(t); },
                       threads, critIters, outsideIters, durationNs);
    }
    const std::uint64_t base = policy == "exp2"   ? 2
                               : policy == "exp4" ? 4
                                                  : 8;
    runtime::TasLock<runtime::ExpBackoff> lock{
        runtime::ExpBackoff(base, kInitial, kMaxWait)};
    return runLoop([&](std::uint32_t) { lock.lock(); },
                   [&](std::uint32_t) { lock.unlock(); }, threads,
                   critIters, outsideIters, durationNs);
}

struct StallResult
{
    std::uint64_t watchdogTrips = 0;
    std::uint64_t tripRetunes = 0;
    std::uint64_t overloadRetunes = 0;
    std::uint64_t rearms = 0;
    bool consumed = false; ///< trip reached the controller in time
};

/**
 * Injected-stall row: holder freezes inside the lock, waiter parks
 * with a frozen heartbeat epoch, the observatory watchdog trips and
 * publishes through the RetuneHub, the waiter's controller consumes
 * the Degraded edge.  Exactly one trip, exactly one attributed
 * retune.
 */
StallResult
runStallRow(std::uint64_t sampleNs, std::uint64_t deadlineNs)
{
    obs::RetuneHub::global().resetForTest();

    runtime::AdaptiveBackoffConfig acfg =
        runtime::adaptiveConfigFrom(8, 1 << 15, 1 << 12);
    // One park slice must outlast the watchdog deadline so the frozen
    // epoch is caught inside a single sleep.
    acfg.parkSliceNs = 3 * deadlineNs;
    runtime::AdaptiveBackoffController ctl(acfg);
    runtime::TasLock<runtime::AdaptiveSpinBackoff> lock{
        runtime::AdaptiveSpinBackoff(ctl)};

    obs::ObservatoryConfig ocfg;
    ocfg.samplePeriodNs = sampleNs;
    ocfg.watchdogDeadlineNs = deadlineNs;
    ocfg.publishRetune = true;
    ocfg.label = "adaptive.stall";
    obs::Observatory observatory(ocfg);
    observatory.start();

    std::atomic<bool> held{false};
    std::thread holder([&] {
        lock.lock();
        held.store(true, std::memory_order_release);
        // Hold until the waiter has consumed the trip (bounded: the
        // hub poll runs every 16 failed attempts, i.e. every ~16 park
        // slices worst case).
        const std::uint64_t t0 = nowNs();
        while (ctl.tripRetunes() == 0 &&
               nowNs() - t0 < 5'000'000'000ull)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        lock.unlock();
    });
    std::thread waiter([&] {
        while (!held.load(std::memory_order_acquire))
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        const obs::ScopedWaitHeartbeat hb(
            "adaptive", "stall_wait", runtime::waitClockNowNs());
        lock.lock();
        lock.unlock();
    });
    holder.join();
    waiter.join();
    observatory.stop();

    StallResult r;
    r.watchdogTrips = observatory.watchdog().trips().size();
    r.tripRetunes = ctl.tripRetunes();
    r.overloadRetunes = ctl.overloadRetunes();
    r.rearms = ctl.signalRearms();
    r.consumed = r.tripRetunes > 0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const support::Options opts(
        argc, argv, {"report-out", "duration-ms", "reps"});

    printHeader(
        "ext_adaptive_feedback: contention-feedback adaptive backoff "
        "vs fixed schedules on real threads",
        "runtime counterpart of the paper's adaptive-backoff "
        "question; observatory retune loop per DESIGN.md §16-17");

    const std::uint64_t durationNs =
        static_cast<std::uint64_t>(opts.getInt("duration-ms", 60)) *
        1'000'000;
    const int reps =
        static_cast<int>(opts.getInt("reps", 2));

    // low: short holds, work outside the lock — the lock is almost
    //      never observed held, so this measures pure policy
    //      overhead (the uncontended gate).
    // high: long holds, nothing outside — every acquire waits behind
    //      a long critical section, and once threads outnumber
    //      cores, a spinning waiter is directly stealing CPU from
    //      the (preempted) holder.  This is the regime the feedback
    //      loop exists for: the ladder parks the waiters and gives
    //      the holder the core back.
    struct Contention
    {
        std::string label;
        std::uint64_t critIters;
        std::uint64_t outsideIters;
    };
    const std::vector<std::uint32_t> kThreads = {1, 2, 4, 8};
    const std::vector<Contention> kContention = {
        {"low", 64, 1024}, {"high", 16384, 0}};

    std::printf("telemetry: %s   duration %llu ms x %d reps\n\n",
                obs::kTelemetryEnabled ? "on" : "off",
                static_cast<unsigned long long>(durationNs /
                                                1'000'000),
                reps);

    obs::RunReport report(
        "ext_adaptive_feedback",
        "adaptive vs fixed backoff goodput sweep plus the "
        "watchdog-trip retune row");

    support::Table table({"contention", "threads", "exp2", "exp4",
                          "exp8", "adaptive", "queue", "adaptive/best_fixed"});

    // goodput[contention][threads][policy]
    double winHighT8 = 0.0;
    double winLowT1 = 0.0;
    for (const auto &[cont, crit, outside] : kContention) {
        for (std::uint32_t threads : kThreads) {
            std::vector<double> goodput;
            std::uint64_t retunes = 0;
            for (const std::string &policy : kPolicies) {
                // Best-of-reps: scheduler hiccups only ever depress a
                // duration-based goodput measurement, never inflate
                // it, so max is the low-noise estimator.
                CellResult best;
                for (int rep = 0; rep < reps; ++rep) {
                    CellResult r = runCell(policy, threads, crit,
                                           outside, durationNs);
                    if (r.goodput > best.goodput)
                        best = r;
                }
                goodput.push_back(best.goodput);
                if (policy == "adaptive")
                    retunes = best.retunes;
                const std::string prefix = "adaptive.sweep." + cont +
                                           ".t" +
                                           std::to_string(threads) +
                                           "." + policy;
                report.addMetric(prefix + ".goodput", best.goodput);
            }
            const double bestFixed = std::max(
                goodput[0], std::max(goodput[1], goodput[2]));
            const double ratio =
                bestFixed == 0.0 ? 0.0 : goodput[3] / bestFixed;
            report.addMetric("adaptive.sweep." + cont + ".t" +
                                 std::to_string(threads) +
                                 ".win_ratio",
                             ratio);
            report.addMetric("adaptive.sweep." + cont + ".t" +
                                 std::to_string(threads) +
                                 ".adaptive_retunes",
                             static_cast<double>(retunes));
            if (cont == "high" && threads == 8)
                winHighT8 = ratio;
            if (cont == "low" && threads == 1)
                winLowT1 = ratio;
            table.addRow({cont, std::to_string(threads),
                          std::to_string(goodput[0]),
                          std::to_string(goodput[1]),
                          std::to_string(goodput[2]),
                          std::to_string(goodput[3]),
                          std::to_string(goodput[4]),
                          std::to_string(ratio)});
        }
    }
    std::fputs(table.str().c_str(), stdout);

    // Injected-stall row: the PR 9 loop on real threads.
    const StallResult stall = runStallRow(2'000'000, 5'000'000);
    std::printf("\nstall row: watchdog_trips=%llu trip_retunes=%llu "
                "overload_retunes=%llu rearms=%llu\n",
                static_cast<unsigned long long>(stall.watchdogTrips),
                static_cast<unsigned long long>(stall.tripRetunes),
                static_cast<unsigned long long>(
                    stall.overloadRetunes),
                static_cast<unsigned long long>(stall.rearms));
    report.addMetric("adaptive.stall.watchdog_trips",
                     static_cast<double>(stall.watchdogTrips));
    report.addMetric("adaptive.stall.trip_retunes",
                     static_cast<double>(stall.tripRetunes));
    report.addMetric("adaptive.stall.overload_retunes",
                     static_cast<double>(stall.overloadRetunes));

    maybeWriteRunReport(opts, report);

    // -- self-gates ---------------------------------------------------
    int failures = 0;
    const char *env = std::getenv("ABSYNC_ADAPTIVE_GATE");
    const bool gateGoodput =
        env == nullptr || (std::strcmp(env, "off") != 0 &&
                           std::strcmp(env, "0") != 0);
    if (gateGoodput) {
        if (winHighT8 < 1.0) {
            std::fprintf(stderr,
                         "FAIL high.t8: adaptive/best_fixed = %.3f, "
                         "required >= 1.0 (feedback must win when "
                         "oversubscribed)\n",
                         winHighT8);
            ++failures;
        }
        if (winLowT1 < 0.95) {
            std::fprintf(stderr,
                         "FAIL low.t1: adaptive/best_fixed = %.3f, "
                         "required >= 0.95 (feedback must be ~free "
                         "uncontended)\n",
                         winLowT1);
            ++failures;
        }
    } else {
        std::printf("goodput gates skipped (ABSYNC_ADAPTIVE_GATE)\n");
    }
    if (obs::kTelemetryEnabled) {
        if (stall.watchdogTrips != 1) {
            std::fprintf(stderr,
                         "FAIL stall: expected exactly 1 watchdog "
                         "trip, measured %llu\n",
                         static_cast<unsigned long long>(
                             stall.watchdogTrips));
            ++failures;
        }
        if (stall.tripRetunes != 1) {
            std::fprintf(stderr,
                         "FAIL stall: expected exactly 1 "
                         "trip-attributed retune, measured %llu\n",
                         static_cast<unsigned long long>(
                             stall.tripRetunes));
            ++failures;
        }
    }
    if (failures > 0) {
        std::fprintf(stderr, "%d adaptive-feedback gate failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("adaptive-feedback gates: all passed\n");
    return 0;
}
