/**
 * @file
 * Figure 5: network accesses per processor vs N at A = 0 (all
 * processors arrive simultaneously), for no backoff, backoff on the
 * barrier variable, and exponential flag backoff with bases 2/4/8.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "core/models.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv,
                          {"runs", "seed", "csv", "report-out", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 5));
    const unsigned jobs = jobsOption(opts);

    printHeader("Figure 5: net accesses per processor, A = 0",
                "Agarwal & Cherian 1989, Figure 5 / Section 6.2");

    obs::RunReport report("fig5_accesses_a0",
                          "Figure 5: net accesses per processor, A=0");
    const auto table = barrierSweepTable(0, Metric::Accesses, runs,
                                         seed, &report, jobs);
    std::printf("%s", opts.getBool("csv") ? table.csv().c_str()
                                       : table.str().c_str());

    const double none =
        barrierCell(64, 0, core::BackoffConfig::none(),
                    Metric::Accesses, runs, seed, jobs);
    const double var =
        barrierCell(64, 0, core::BackoffConfig::variableOnly(),
                    Metric::Accesses, runs, seed, jobs);
    std::printf("\nSpot checks against the paper (N = 64, A = 0):\n");
    std::printf("  no backoff: measured %.1f, paper ~160 (5N/2)\n",
                none);
    std::printf("  variable backoff: measured %.1f, paper ~132 "
                "(\"reduced to roughly 132, a 15%% reduction\")\n",
                var);
    std::printf("  measured reduction: %.1f%% (paper: ~15-20%%)\n",
                (1.0 - var / none) * 100.0);
    std::printf("Paper: flag backoff (bases 2/4/8) \"made no "
                "difference\" at A = 0 beyond the variable backoff.\n");

    addBarrierProfileSection(report, 64, 0, "var", runs, seed);
    maybeWriteRunReport(opts, report);
    return 0;
}
