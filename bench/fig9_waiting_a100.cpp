/**
 * @file
 * Figure 9: processor waiting time vs N at A = 100.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "csv", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 9));
    const unsigned jobs = jobsOption(opts);

    printHeader("Figure 9: waiting time per processor, A = 100",
                "Agarwal & Cherian 1989, Figure 9 / Section 7");

    const auto table =
        barrierSweepTable(100, Metric::Wait, runs, seed,
                          nullptr, jobs);
    std::printf("%s", opts.getBool("csv") ? table.csv().c_str()
                                       : table.str().c_str());

    std::printf("\nPaper: at A = 100 the waiting-time curves still "
                "track the access curves closely (\"the strong "
                "resemblance of the curves in Figures 6 and 9\").\n");
    return 0;
}
