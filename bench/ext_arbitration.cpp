/**
 * @file
 * Ablation: memory-module arbitration policy (DESIGN.md Section 7).
 *
 * The paper's Section 3 model says only that one processor accesses
 * the module per cycle; it does not specify *which*.  The choice
 * matters: with uniformly-random arbitration the flag writer's win
 * time is geometric (variance ~N^2) and run-to-run standard
 * deviations blow far past the <7 % the paper reports (Section 5.2),
 * while queued (FIFO) service matches both Model 1's magnitudes and
 * the reported variance.  This bench quantifies that.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 31));
    const unsigned jobs = jobsOption(opts);

    printHeader("Ablation: module arbitration policy",
                "DESIGN.md Sec 7; paper Sections 3, 5.2 and Model 1");

    for (std::uint64_t a : {0ull, 1000ull}) {
        support::Table t({"arbitration", "accesses/proc",
                          "run-to-run cv %", "wait/proc"});
        for (auto arb : {sim::Arbitration::Fifo,
                         sim::Arbitration::RoundRobin,
                         sim::Arbitration::Random}) {
            core::BarrierConfig cfg;
            cfg.processors = 64;
            cfg.arrivalWindow = a;
            cfg.backoff = core::BackoffConfig::none();
            cfg.arbitration = arb;
            const auto s =
                core::BarrierSimulator(cfg).runMany(runs, seed, jobs);
            const char *name =
                arb == sim::Arbitration::Fifo
                    ? "fifo"
                    : (arb == sim::Arbitration::RoundRobin
                           ? "round-robin"
                           : "random");
            t.addRow({name, support::fmt(s.accesses.mean(), 1),
                      support::fmt(s.accesses.cv() * 100.0, 1),
                      support::fmt(s.wait.mean(), 1)});
        }
        std::printf("\nN = 64, A = %llu, no backoff:\n%s",
                    static_cast<unsigned long long>(a),
                    t.str().c_str());
    }

    std::printf("\nReading: FIFO lands exactly on Model 1 (5N/2 = "
                "160 at A=0) with near-zero variance; random matches "
                "the mean but its run-to-run deviation (~40%%) is far "
                "beyond the <7%% the paper reports — evidence the "
                "authors' simulator served contenders in order.  "
                "Round-robin lets the flag writer jump the poller "
                "queue within one rotation, landing on the 3N/2 "
                "figure Section 6.2 quotes for variable backoff.\n");
    return 0;
}
