/**
 * @file
 * google-benchmark microbenchmarks of the real-thread runtime
 * library: lock acquisition under contention and barrier phase
 * crossing, for each backoff policy.
 *
 * These are wall-clock measurements on the host (not the paper's
 * cycle model); they show the same qualitative story — under
 * contention, backoff pays.
 */

#include <benchmark/benchmark.h>

#include "obs/counters.hpp"
#include "runtime/adaptive_backoff.hpp"
#include "runtime/barrier.hpp"
#include "runtime/spin_backoff.hpp"
#include "runtime/spinlock.hpp"
#include "runtime/tang_yew_barrier.hpp"
#include "runtime/tree_barrier.hpp"

using namespace absync::runtime;

namespace
{

/** Shared critical-section work so locks are actually contended. */
template <typename Lock>
void
lockBench(benchmark::State &state, Lock &lock)
{
    std::uint64_t local = 0;
    for (auto _ : state) {
        lock.lock();
        benchmark::DoNotOptimize(++local);
        lock.unlock();
    }
}

TasLock<NoBackoff> g_tas_none;
TasLock<ExpBackoff> g_tas_exp{ExpBackoff(2, 8, 4096)};
TtasLock<NoBackoff> g_ttas_none;
TtasLock<ExpBackoff> g_ttas_exp;
TicketLock g_ticket_prop(32);
TicketLock g_ticket_spin(0);

void
BM_TasLock_NoBackoff(benchmark::State &state)
{
    lockBench(state, g_tas_none);
}

void
BM_TasLock_ExpBackoff(benchmark::State &state)
{
    lockBench(state, g_tas_exp);
}

void
BM_TtasLock_NoBackoff(benchmark::State &state)
{
    lockBench(state, g_ttas_none);
}

void
BM_TtasLock_ExpBackoff(benchmark::State &state)
{
    lockBench(state, g_ttas_exp);
}

void
BM_TicketLock_Proportional(benchmark::State &state)
{
    lockBench(state, g_ticket_prop);
}

void
BM_TicketLock_PlainSpin(benchmark::State &state)
{
    lockBench(state, g_ticket_spin);
}

/**
 * Fixed-vs-adaptive pair under a long hold and oversubscription (8
 * threads): every failed TasLock attempt runs the policy, so the
 * fixed spinner steals CPU from the (preempted) holder while the
 * adaptive ladder escalates to yield/park and gives it back.  The
 * regression gate (BASELINE_gbench_adaptive.json) floors the
 * fixed/adaptive time ratio — the feedback loop must keep paying.
 */
constexpr std::uint64_t kPairHoldIters = 4096;

AdaptiveBackoffConfig
pairAdaptiveConfig()
{
    AdaptiveBackoffConfig cfg =
        adaptiveConfigFrom(8, 1 << 15, 1 << 12);
    cfg.parkSliceNs = 1'000'000; // fewer wakeups when oversubscribed
    return cfg;
}

AdaptiveBackoffController g_pair_ctl{pairAdaptiveConfig()};
TasLock<ExpBackoff> g_pair_fixed{ExpBackoff(2, 8, 1 << 15)};
TasLock<AdaptiveSpinBackoff> g_pair_adaptive{
    AdaptiveSpinBackoff(g_pair_ctl)};

template <typename Lock>
void
holdingLockBench(benchmark::State &state, Lock &lock)
{
    for (auto _ : state) {
        lock.lock();
        spinForUncounted(kPairHoldIters);
        lock.unlock();
    }
}

void
BM_AdaptiveVsFixed_FixedExp(benchmark::State &state)
{
    holdingLockBench(state, g_pair_fixed);
}

void
BM_AdaptiveVsFixed_Adaptive(benchmark::State &state)
{
    holdingLockBench(state, g_pair_adaptive);
}

/**
 * Multi-threaded barrier-bench scaffolding.  google-benchmark starts
 * the worker threads without any setup rendezvous, so the shared
 * barrier must be published through an atomic and torn down only
 * after every thread has checked out — otherwise a late thread can
 * read a null pointer or poll freed memory.
 */
template <typename B, typename Make, typename Arrive>
void
barrierBenchImpl(benchmark::State &state, Make &&make,
                 Arrive &&arrive)
{
    static std::atomic<B *> shared{nullptr};
    static std::atomic<int> checked_out{0};

    if (state.thread_index() == 0) {
        // Per-benchmark telemetry isolation: the registry is process
        // global, so zero it before the workers start recording (they
        // only record inside the measurement loop, past this gate).
        absync::obs::CounterRegistry::global().resetAll();
        shared.store(make(), std::memory_order_release);
    }
    B *barrier;
    while (!(barrier = shared.load(std::memory_order_acquire)))
        cpuRelax();

    for (auto _ : state)
        arrive(*barrier, state.thread_index());

    if (checked_out.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.threads()) {
        // Last one out reports and tears down.
        const std::uint64_t phases =
            std::max<std::uint64_t>(1, state.iterations());
        state.counters["polls/phase"] =
            static_cast<double>(barrier->totalPolls() / phases);
        // Telemetry counter snapshot, normalized per phase; all-zero
        // in ABSYNC_TELEMETRY=OFF builds.  Every thread has passed
        // the checkout gate, so its recording is complete even if its
        // slab has not been folded into retired_ yet — total() covers
        // live and retired slabs alike.
        const absync::obs::CounterSnapshot snap =
            absync::obs::CounterRegistry::global().total();
        snap.forEach([&state, phases](const char *key,
                                      std::uint64_t value) {
            state.counters[std::string("tele.") + key + "/phase"] =
                static_cast<double>(value) /
                static_cast<double>(phases);
        });
        shared.store(nullptr, std::memory_order_relaxed);
        checked_out.store(0, std::memory_order_relaxed);
        delete barrier;
    } else {
        // Wait until the reporter resets the gate so the next run
        // of this benchmark starts clean.
        while (shared.load(std::memory_order_acquire))
            cpuRelax();
    }
}

/** Barrier phase crossing with all participating threads. */
void
barrierBench(benchmark::State &state, BarrierPolicy policy)
{
    barrierBenchImpl<SpinBarrier>(
        state,
        [&] {
            BarrierConfig cfg;
            cfg.policy = policy;
            cfg.blockThreshold = 1 << 10;
            return new SpinBarrier(
                static_cast<std::uint32_t>(state.threads()), cfg);
        },
        [](SpinBarrier &b, int) { b.arriveAndWait(); });
}

void
BM_Barrier_None(benchmark::State &state)
{
    barrierBench(state, BarrierPolicy::None);
}

void
BM_Barrier_Variable(benchmark::State &state)
{
    barrierBench(state, BarrierPolicy::Variable);
}

void
BM_Barrier_Exponential(benchmark::State &state)
{
    barrierBench(state, BarrierPolicy::Exponential);
}

void
BM_Barrier_Blocking(benchmark::State &state)
{
    barrierBench(state, BarrierPolicy::Blocking);
}

void
BM_Barrier_Adaptive(benchmark::State &state)
{
    barrierBench(state, BarrierPolicy::Adaptive);
}

/** Tang & Yew two-variable barrier (the paper's construction). */
void
BM_TangYewBarrier_Exponential(benchmark::State &state)
{
    barrierBenchImpl<TangYewBarrier>(
        state,
        [&] {
            BarrierConfig cfg;
            cfg.policy = BarrierPolicy::Exponential;
            return new TangYewBarrier(
                static_cast<std::uint32_t>(state.threads()), cfg);
        },
        [](TangYewBarrier &b, int) { b.arriveAndWait(); });
}

/** Combining-tree barrier, fan-in 2. */
void
BM_TreeBarrier_Exponential(benchmark::State &state)
{
    barrierBenchImpl<TreeBarrier>(
        state,
        [&] {
            BarrierConfig cfg;
            cfg.policy = BarrierPolicy::Exponential;
            return new TreeBarrier(
                static_cast<std::uint32_t>(state.threads()), 2, cfg);
        },
        [](TreeBarrier &b, int tid) {
            b.arriveAndWait(static_cast<std::uint32_t>(tid));
        });
}

/**
 * Telemetry overhead guard: the same fixed spin measured through the
 * uncounted primitive and through the instrumented one.  The ratio of
 * the two is the whole per-wait telemetry cost (one relaxed counter
 * bump and one gated trace check per spinFor call); run_benches.sh
 * computes it from the JSON export and warns past 2%.  In
 * ABSYNC_TELEMETRY=OFF builds the instrumented path compiles down to
 * the uncounted one, so the ratio is 1 by construction.
 */
constexpr std::uint64_t kGuardSpin = 1024;

void
BM_SpinFor_Uncounted(benchmark::State &state)
{
    for (auto _ : state)
        spinForUncounted(kGuardSpin);
}

void
BM_SpinFor_Telemetry(benchmark::State &state)
{
    absync::obs::SyncCounters slab;
    absync::obs::ScopedCounters scope(&slab);
    for (auto _ : state)
        spinFor(kGuardSpin);
    const absync::obs::CounterSnapshot snap = slab.snapshot();
    state.counters["tele.backoff_waited"] =
        static_cast<double>(snap.backoffWaited);
}

// Modest fixed iteration counts: on an oversubscribed host (fewer
// cores than threads) each spinning barrier phase costs scheduling
// quanta, and the point — poll counts per phase — is visible at any
// size.
constexpr int kLockIters = 50000;
constexpr int kBarrierIters = 1000;

} // namespace

BENCHMARK(BM_TasLock_NoBackoff)->Threads(4)->Iterations(kLockIters);
BENCHMARK(BM_TasLock_ExpBackoff)->Threads(4)->Iterations(kLockIters);
BENCHMARK(BM_TtasLock_NoBackoff)->Threads(4)->Iterations(kLockIters);
BENCHMARK(BM_TtasLock_ExpBackoff)->Threads(4)->Iterations(kLockIters);
BENCHMARK(BM_TicketLock_Proportional)
    ->Threads(4)
    ->Iterations(kLockIters);
BENCHMARK(BM_TicketLock_PlainSpin)->Threads(4)->Iterations(kLockIters);

BENCHMARK(BM_SpinFor_Uncounted);
BENCHMARK(BM_SpinFor_Telemetry);

// Modest fixed count: the fixed-spin side burns scheduling quanta
// per handoff once 8 threads share fewer cores.
BENCHMARK(BM_AdaptiveVsFixed_FixedExp)
    ->Threads(8)
    ->Iterations(500);
BENCHMARK(BM_AdaptiveVsFixed_Adaptive)
    ->Threads(8)
    ->Iterations(500);

BENCHMARK(BM_Barrier_None)->Threads(4)->Iterations(kBarrierIters);
BENCHMARK(BM_Barrier_Variable)->Threads(4)->Iterations(kBarrierIters);
BENCHMARK(BM_Barrier_Exponential)
    ->Threads(4)
    ->Iterations(kBarrierIters);
BENCHMARK(BM_Barrier_Blocking)->Threads(4)->Iterations(kBarrierIters);
BENCHMARK(BM_Barrier_Adaptive)->Threads(4)->Iterations(kBarrierIters);
BENCHMARK(BM_TangYewBarrier_Exponential)
    ->Threads(4)
    ->Iterations(kBarrierIters);
BENCHMARK(BM_TreeBarrier_Exponential)
    ->Threads(4)
    ->Iterations(kBarrierIters);

BENCHMARK_MAIN();
