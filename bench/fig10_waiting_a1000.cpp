/**
 * @file
 * Figure 10: processor waiting time vs N at A = 1000 — the cost side
 * of the backoff tradeoff.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "csv", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 10));
    const unsigned jobs = jobsOption(opts);

    printHeader("Figure 10: waiting time per processor, A = 1000",
                "Agarwal & Cherian 1989, Figure 10 / Section 7");

    const auto table =
        barrierSweepTable(1000, Metric::Wait, runs, seed,
                          nullptr, jobs);
    std::printf("%s", opts.getBool("csv") ? table.csv().c_str()
                                       : table.str().c_str());

    const auto cell = [&](std::uint32_t n, const char *p) {
        return barrierCell(n, 1000,
                           core::BackoffConfig::fromString(p),
                           Metric::Wait, runs, seed, jobs);
    };
    const double none64 = cell(64, "none");
    const double exp2_64 = cell(64, "exp2");
    const double exp8_64 = cell(64, "exp8");
    std::printf("\nSpot checks against the paper (A = 1000, N = 64):\n");
    std::printf("  no backoff: measured %.0f cycles (paper: 576)\n",
                none64);
    std::printf("  base-8: measured %.0f cycles (paper: 2048, an "
                "increase of over 350%%); measured increase %.0f%%\n",
                exp8_64, (exp8_64 / none64 - 1.0) * 100.0);
    std::printf("  base-2: +%.0f%% wait (paper Sec 7: \"increasing "
                "the time spent at the barrier by only 16%%\")\n",
                (exp2_64 / none64 - 1.0) * 100.0);
    std::printf("  paper: \"waiting times ... reach a maximum around "
                "64 processors and then actually decline\": measured "
                "exp8 N=64: %.0f, N=256: %.0f, N=512: %.0f\n",
                exp8_64, cell(256, "exp8"), cell(512, "exp8"));
    return 0;
}
