/**
 * @file
 * Extension: software combining-tree barrier with node-level backoff
 * (paper Sections 1, 6.2 and reference [25]).
 *
 * When N is large relative to A the centralized barrier saturates
 * its two memory modules; the paper points to software combining
 * trees and notes that adaptive backoff still applies "on the
 * intermediate nodes of the tree".  This bench compares:
 *
 *  - the flat two-variable barrier vs combining trees of fan-in
 *    2/4/8/16, with and without backoff at the nodes;
 *  - per-processor accesses, waiting time, and the traffic at the
 *    busiest module — the hot-spot metric the tree exists to bound.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "core/tree_barrier_sim.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "n", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 50));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 25));
    const unsigned jobs = jobsOption(opts);
    const auto n = static_cast<std::uint32_t>(opts.getInt("n", 256));

    printHeader("Extension: combining-tree barrier with per-node "
                "backoff",
                "Agarwal & Cherian 1989, Sections 1 & 6.2; Yew, "
                "Tseng & Lawrie [25]");

    for (std::uint64_t a : {0ull, 1000ull}) {
        for (const char *policy : {"none", "exp2"}) {
            support::Table t({"barrier", "accesses/proc", "wait/proc",
                              "busiest-module traffic"});
            // Flat centralized barrier.
            {
                core::BarrierConfig cfg;
                cfg.processors = n;
                cfg.arrivalWindow = a;
                cfg.backoff = core::BackoffConfig::fromString(policy);
                const auto s =
                    core::BarrierSimulator(cfg).runMany(runs, seed, jobs);
                t.addRow({"flat (centralized)",
                          support::fmt(s.accesses.mean(), 1),
                          support::fmt(s.wait.mean(), 1),
                          support::fmt(s.flagTraffic.mean(), 0)});
            }
            for (std::uint32_t d : {2u, 4u, 8u, 16u}) {
                core::TreeBarrierConfig cfg;
                cfg.processors = n;
                cfg.fanIn = d;
                cfg.arrivalWindow = a;
                cfg.backoff = core::BackoffConfig::fromString(policy);
                core::TreeBarrierSimulator sim(cfg);
                const auto s = sim.runMany(runs, seed, jobs);
                t.addRow({"tree d=" + std::to_string(d) + " (" +
                              std::to_string(sim.nodeCount()) +
                              " nodes, depth " +
                              std::to_string(sim.depth()) + ")",
                          support::fmt(s.accesses.mean(), 1),
                          support::fmt(s.wait.mean(), 1),
                          support::fmt(s.maxModuleTraffic.mean(), 0)});
            }
            std::printf("\nN = %u, A = %llu, backoff = %s:\n%s", n,
                        static_cast<unsigned long long>(a), policy,
                        t.str().c_str());
        }
    }

    std::printf(
        "\nReading: the tree bounds the busiest module's traffic by "
        "~fan-in instead of ~N, and cuts total accesses at A = 0 "
        "where the flat barrier melts down; node-level exponential "
        "backoff still pays at large A, exactly as Section 6.2 "
        "anticipates.  (With a limited-pointer directory, fan-in "
        "below the pointer count also eliminates the invalidation "
        "traffic of Section 2.)\n");
    return 0;
}
