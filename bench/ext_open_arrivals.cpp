/**
 * @file
 * Extension experiment: open-system overload — the stable→unstable λ
 * transition per backoff policy, and its repair by graceful
 * degradation (core/open_system.hpp; DESIGN.md §13).
 *
 * The paper's experiments are closed: N processors, one episode.
 * This bench opens the system — requests arrive continuously at rate
 * λ against one contended resource — and sweeps λ across the
 * capacity 1/holdCycles for the paper's exp2/exp4/exp8 family plus a
 * Bender-style robust policy, under an adversarial bursty arrival
 * process (the Goldberg–Lapinskas instability driver).  Each policy
 * shows a stable regime (goodput tracks offered load, detector quiet)
 * and a saturated regime (backlog diverges, detector latches); the
 * onset λ orders the policies: aggressive bases saturate earlier
 * because deep backoff windows leave the resource idle while backlog
 * accumulates.
 *
 * The second table holds one unstable configuration fixed and switches
 * the degradation controls on one at a time: load shedding with
 * retry-after, queue-on-threshold escalation (Section 7 blocking
 * path), and bounded retry budgets.  The acceptance bar: at least one
 * control restores goodput to >= 90% of offered load.
 *
 * Modes:
 *   --report-out <path>  absync.run_report.v1 with per-policy onset
 *                        λ, stable-point goodput ratios, and the
 *                        degradation ratios — the regression gate's
 *                        input (absync.open_system.v1 baselines).
 *   --soak               bounded-memory soak: one Poisson run of
 *                        --soak-cycles (default 1e9) cycles streaming
 *                        through the P²/BoundedSeries pipeline with
 *                        tracing enabled; fails (exit 1) on RSS above
 *                        --rss-limit-mb, any dropped TraceRing event,
 *                        or a saturation flag on the stable config.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/open_system.hpp"
#include "obs/trace_ring.hpp"
#include "support/table.hpp"

#if defined(__linux__)
#include <fstream>
#endif

using namespace absync;
using namespace absync::bench;

namespace
{

/** Raw service capacity: one completion per holdCycles. */
constexpr std::uint32_t kHoldCycles = 50;
constexpr double kCapacity = 1.0 / kHoldCycles;

/** λ sweep grid as fractions of raw capacity. */
const std::vector<double> &
rhoGrid()
{
    static const std::vector<double> g = {0.30, 0.50, 0.70, 0.85,
                                          0.95, 1.05};
    return g;
}

core::OpenSystemConfig
baseConfig(double lambda, const std::string &policy,
           std::uint64_t cycles, core::ArrivalProcess process)
{
    core::OpenSystemConfig cfg;
    cfg.lambda = lambda;
    cfg.arrivals = process;
    cfg.burstSize = 32;
    cfg.backoff = core::openBackoffFromString(policy);
    cfg.holdCycles = kHoldCycles;
    cfg.cycles = cycles;
    return cfg;
}

/** Resident set size in MiB (0 where /proc is unavailable). */
double
rssMiB()
{
#if defined(__linux__)
    std::ifstream status("/proc/self/status");
    std::string key;
    while (status >> key) {
        if (key == "VmRSS:") {
            double kib = 0.0;
            status >> kib;
            return kib / 1024.0;
        }
        status.ignore(4096, '\n');
    }
#endif
    return 0.0;
}

int
soak(const support::Options &opts, std::uint64_t seed)
{
    const auto cycles = static_cast<std::uint64_t>(
        opts.getInt("soak-cycles", 1000000000LL));
    const double rss_limit = static_cast<double>(
        opts.getInt("rss-limit-mb", 512));

    // Stable Poisson configuration at 60% of capacity: the soak
    // guards the *plumbing* (P² quantiles, decimating series, shed
    // caps, trace ring) over a multi-billion-cycle stream, so the
    // run itself must be healthy.
    core::OpenSystemConfig cfg;
    cfg.lambda = 0.6 * kCapacity;
    cfg.arrivals = core::ArrivalProcess::Poisson;
    cfg.backoff = core::openBackoffFromString("robust");
    cfg.holdCycles = kHoldCycles;
    cfg.cycles = cycles;

    obs::TraceRegistry::global().enable(4096);
    const double rss_before = rssMiB();
    support::Rng rng(seed);
    const auto st = core::OpenSystem(cfg).run(rng);
    const double rss_after = rssMiB();
    obs::TraceRegistry::global().disable();
    const std::uint64_t dropped =
        obs::TraceRegistry::global().droppedEvents();

    std::printf("\nsoak: %llu cycles, %llu arrivals, %llu "
                "completions (goodput ratio %.4f)\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(st.arrivalsOffered),
                static_cast<unsigned long long>(st.completions),
                st.goodputRatio);
    std::printf("soak: delay p50/p90/p99 = %.0f/%.0f/%.0f cycles, "
                "avg backlog %.2f, peak %llu\n",
                st.delayP50, st.delayP90, st.delayP99, st.avgBacklog,
                static_cast<unsigned long long>(st.peakBacklog));
    std::printf("soak: %llu detector windows (%llu saturated), "
                "series %zu+%zu samples, rss %.1f -> %.1f MiB, "
                "%llu dropped trace events\n",
                static_cast<unsigned long long>(st.windows),
                static_cast<unsigned long long>(st.saturatedWindows),
                st.goodputSeries.samples.size(),
                st.backlogSeries.samples.size(),
                rss_before, rss_after,
                static_cast<unsigned long long>(dropped));

    int failures = 0;
    const auto expect = [&](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "soak FAIL: %s\n", what);
            ++failures;
        }
    };
    expect(rss_after <= rss_limit, "resident set above limit");
    expect(dropped == 0, "trace ring dropped events at steady state");
    expect(!st.saturated, "stable configuration flagged saturated");
    expect(st.goodputRatio > 0.99,
           "stable configuration lost arrivals");
    expect(st.goodputSeries.samples.size() <= 512 &&
               st.backlogSeries.samples.size() <= 512,
           "windowed series exceeded their sample budget");
    if (failures == 0)
        std::printf("soak: PASS\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv,
                          {"cycles", "runs", "seed", "jobs",
                           "report-out", "soak", "soak-cycles",
                           "rss-limit-mb"});
    const auto cycles =
        static_cast<std::uint64_t>(opts.getInt("cycles", 150000));
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 4));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 23));
    const unsigned jobs = jobsOption(opts);

    printHeader("Extension: open-system overload — saturation onset "
                "per policy, graceful degradation",
                "open-arrival engine over the Section 3 module model; "
                "Bender et al., Goldberg & Lapinskas");

    if (opts.getBool("soak"))
        return soak(opts, seed);

    obs::RunReport report("ext_open_arrivals",
                          "Open-system saturation onset per backoff "
                          "policy and graceful degradation");
    report.addMetric("open.capacity", kCapacity);

    const std::vector<std::string> policies = {"exp2", "exp4", "exp8",
                                               "robust"};

    std::printf("\nPoisson arrivals, hold %u cycles (capacity "
                "%.3f/cycle), %llu cycles, %llu runs:\n",
                kHoldCycles, kCapacity,
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(runs));

    // ---- λ sweep: goodput ratio per (policy, λ); * = saturated ----
    std::vector<std::string> header = {"rho (λ/cap)"};
    header.insert(header.end(), policies.begin(), policies.end());
    support::Table sweep(header);
    std::vector<double> onset(policies.size(), 0.0);

    for (const double rho : rhoGrid()) {
        std::vector<std::string> row = {support::fmt(rho, 2)};
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto cfg =
                baseConfig(rho * kCapacity, policies[p], cycles,
                           core::ArrivalProcess::Poisson);
            const auto st =
                core::OpenSystem(cfg).runMany(runs, seed, jobs);
            row.push_back(support::fmt(st.goodputRatio, 3) +
                          (st.saturated ? " *" : ""));
            if (st.saturated && onset[p] == 0.0)
                onset[p] = rho;
            const std::string key = "open." + policies[p] + ".rho" +
                                    std::to_string(
                                        static_cast<int>(rho * 100));
            report.addMetric(key + ".goodput_ratio", st.goodputRatio);
            report.addMetric(key + ".saturated",
                             st.saturated ? 1.0 : 0.0);
            report.addMetric(key + ".avg_backlog", st.avgBacklog);
        }
        sweep.addRow(row);
    }
    std::printf("%s", sweep.str().c_str());
    std::printf("(* = saturation detector latched in a majority of "
                "runs)\n");

    std::printf("\nSaturation onset (first flagged rho; 0 = stable "
                "across the grid):\n");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        std::printf("  %-7s %s\n", policies[p].c_str(),
                    onset[p] > 0.0 ? support::fmt(onset[p], 2).c_str()
                                   : "stable");
        // 0 encodes "never saturated on this grid"; the gate treats
        // it as an exact match requirement.
        report.addMetric("open." + policies[p] + ".onset_rho",
                         onset[p]);
    }

    // ---- arrival-process ablation: bursts break exp, robust holds --
    const double rho_ablate = 0.50;
    std::printf("\nArrival-process ablation at rho=%.2f (goodput "
                "ratio; * = saturated):\n",
                rho_ablate);
    support::Table ablate({"process", "exp2", "robust"});
    for (const auto process : {core::ArrivalProcess::Poisson,
                               core::ArrivalProcess::Batch,
                               core::ArrivalProcess::Adversarial}) {
        std::vector<std::string> row = {
            core::arrivalProcessName(process)};
        for (const char *policy : {"exp2", "robust"}) {
            const auto cfg = baseConfig(rho_ablate * kCapacity,
                                        policy, cycles, process);
            const auto st =
                core::OpenSystem(cfg).runMany(runs, seed, jobs);
            row.push_back(support::fmt(st.goodputRatio, 3) +
                          (st.saturated ? " *" : ""));
            report.addMetric("open.process." +
                                 core::arrivalProcessName(process) +
                                 "." + std::string(policy) +
                                 ".goodput_ratio",
                             st.goodputRatio);
        }
        ablate.addRow(row);
    }
    std::printf("%s", ablate.str().c_str());

    // ---- graceful degradation: one unstable config, controls on ----
    const double rho_degrade = 0.85;
    std::printf("\nGraceful degradation at rho=%.2f under exp8 with "
                "adversarial bursts (unstable baseline):\n",
                rho_degrade);
    support::Table degrade({"configuration", "goodput ratio",
                            "avg backlog", "peak", "sheds",
                            "withdrawn", "saturated"});
    const auto degradeRow = [&](const char *label, const char *slug,
                                core::OpenSystemConfig cfg) {
        const auto st =
            core::OpenSystem(cfg).runMany(runs, seed, jobs);
        degrade.addRow(
            {label, support::fmt(st.goodputRatio, 3),
             support::fmt(st.avgBacklog, 1),
             std::to_string(st.peakBacklog),
             std::to_string(st.sheds),
             std::to_string(st.withdrawals),
             st.saturated ? "yes" : "no"});
        const std::string key = std::string("open.degrade.") + slug;
        report.addMetric(key + ".goodput_ratio", st.goodputRatio);
        report.addMetric(key + ".avg_backlog", st.avgBacklog);
        report.addMetric(key + ".saturated", st.saturated ? 1. : 0.);
        return st;
    };

    const auto unstable = [&] {
        return baseConfig(rho_degrade * kCapacity, "exp8", cycles,
                          core::ArrivalProcess::Adversarial);
    };
    degradeRow("baseline (no controls)", "baseline", unstable());

    auto shed = unstable();
    shed.shedCapacity = 64;
    shed.retryAfter = 4 * kHoldCycles;
    degradeRow("shed at 64 + retry-after", "shed", shed);

    auto queue = unstable();
    queue.queueThreshold = 64;
    degradeRow("queue-on-threshold 64", "queue", queue);

    auto budget = unstable();
    budget.retryBudget = 5;
    degradeRow("retry budget 5", "budget", budget);
    std::printf("%s", degrade.str().c_str());

    std::printf(
        "\nReading: below onset every policy keeps goodput at the "
        "offered load; past it deep backoff windows idle the free "
        "resource while backlog accumulates (goodput ratio sags, "
        "detector latches).  Aggressive bases cross first — exp8 and "
        "exp4 before exp2.  Under smooth Poisson arrivals the robust "
        "policy only matches exp2; its payoff is the ablation row — "
        "adversarial bursts collapse the exponential family (windows "
        "grow in lockstep, the resource idles) while randomized "
        "re-probing keeps serving.  On the unstable exp8 point, "
        "queue-on-threshold escalation (the Section 7 blocking path) "
        "eliminates the idle waste and restores goodput to the "
        "offered load; shedding and retry budgets bound backlog and "
        "memory instead, trading completed work for stability.\n");

    maybeWriteRunReport(opts, report);
    return 0;
}
