/**
 * @file
 * Section 3 follow-through: feeding barrier traffic rates into
 * Patel's analytical network model.
 *
 * "The network traffic rates computed using our barrier scheme might
 * also be input into a more complex model of a multistage
 * interconnection network such as that proposed by Patel [17] if
 * network contention results are desired."  This bench does exactly
 * that: it turns the episode simulator's per-processor access counts
 * into offered request rates, adds them to a background data-traffic
 * rate, and evaluates the network acceptance probability and retry
 * cost with and without backoff.
 */

#include <cstdio>

#include "common/bench_util.hpp"
#include "sim/patel_model.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv, {"runs", "seed", "base-rate", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 3));
    const unsigned jobs = jobsOption(opts);
    // Background data traffic per processor per cycle (the paper
    // measured 0.133 for FFT).
    const double base_rate = opts.getDouble("base-rate", 0.133);

    printHeader("Section 3: barrier traffic rates through Patel's "
                "MIN model",
                "Agarwal & Cherian 1989, Section 3 / Patel 1982");

    const std::uint32_t n = 64;
    std::printf("\nN = %u processors (6-stage Omega), background "
                "rate %.3f req/cycle/proc\n",
                n, base_rate);

    support::Table t({"A", "policy", "barrier rate", "offered",
                      "acceptance", "attempts/req"});
    for (std::uint64_t a : {100ull, 1000ull}) {
        for (const char *policy : {"none", "exp2", "exp8"}) {
            core::BarrierConfig cfg;
            cfg.processors = n;
            cfg.arrivalWindow = a;
            cfg.backoff = core::BackoffConfig::fromString(policy);
            const auto s =
                core::BarrierSimulator(cfg).runMany(runs, seed, jobs);
            // Accesses spread over the episode: offered extra rate.
            const double span = s.setTime.mean() + 1.0;
            const double barrier_rate = s.accesses.mean() / span;
            const double offered = base_rate + barrier_rate;
            const sim::PatelNetwork net{2, 2, 6};
            t.addRow({std::to_string(a), policy,
                      support::fmt(barrier_rate, 3),
                      support::fmt(offered, 3),
                      support::fmt(
                          sim::patelAcceptance(net, offered), 3),
                      support::fmt(sim::patelAttemptsPerRequest(
                                       net, offered),
                                   2)});
        }
    }
    std::printf("%s", t.str().c_str());

    std::printf("\nReading: during a no-backoff barrier episode the "
                "offered rate approaches 1 request/cycle/processor "
                "and the network accepts barely half of it; backoff "
                "drops the barrier's own contribution to noise, "
                "restoring the acceptance probability of the "
                "background traffic.  (Patel's model assumes uniform "
                "traffic — the hot-spot case needs the Omega "
                "simulator, bench/ext_hotspot_saturation.)\n");
    return 0;
}
