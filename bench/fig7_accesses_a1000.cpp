/**
 * @file
 * Figure 7: network accesses per processor vs N at A = 1000.
 */

#include <cstdio>

#include "common/bench_util.hpp"

using namespace absync;
using namespace absync::bench;

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv,
                          {"runs", "seed", "csv", "report-out", "jobs"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 100));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 7));
    const unsigned jobs = jobsOption(opts);

    printHeader("Figure 7: net accesses per processor, A = 1000",
                "Agarwal & Cherian 1989, Figure 7 / Section 6.2");

    obs::RunReport report(
        "fig7_accesses_a1000",
        "Figure 7: net accesses per processor, A=1000");
    const auto table =
        barrierSweepTable(1000, Metric::Accesses, runs, seed, &report, jobs);
    std::printf("%s", opts.getBool("csv") ? table.csv().c_str()
                                       : table.str().c_str());

    const auto cell = [&](std::uint32_t n, const char *p) {
        return barrierCell(n, 1000,
                           core::BackoffConfig::fromString(p),
                           Metric::Accesses, runs, seed, jobs);
    };
    std::printf("\nSpot checks against the paper (A = 1000):\n");
    std::printf("  N=16 base-2 savings: measured %.1f%% "
                "(paper: \"over 95%% savings\")\n",
                (1.0 - cell(16, "exp2") / cell(16, "none")) * 100.0);
    std::printf("  N=64 base-2 savings: measured %.1f%% "
                "(paper Sec 7: \"decreased synchronization accesses "
                "by 97%%\")\n",
                (1.0 - cell(64, "exp2") / cell(64, "none")) * 100.0);
    std::printf("  N=256 var-only savings: measured %.1f%% "
                "(paper: \"about a 15%% improvement\")\n",
                (1.0 - cell(256, "var") / cell(256, "none")) * 100.0);
    std::printf("  N<=32 var-only savings: measured %.1f%% at N=32 "
                "(paper: \"virtually no savings\")\n",
                (1.0 - cell(32, "var") / cell(32, "none")) * 100.0);

    addBarrierProfileSection(report, 64, 1000, "exp2", runs, seed);
    maybeWriteRunReport(opts, report);
    return 0;
}
