/**
 * @file
 * Extension: hierarchical NUMA-aware barriers in the 1024-core regime
 * (DESIGN.md §15; Bertuletti et al. and Golab, PAPERS.md).
 *
 * The paper's flat model stops at 64 processors; at three orders of
 * magnitude more cores the machine is tiled — a tile's own memory
 * answers in a few cycles, a remote tile's costs an order of
 * magnitude more.  This bench sweeps N = 256..16384 over a tiled
 * topology and compares, for the spin+backoff and queue policy
 * families:
 *
 *  - the flat centralized barrier (the paper's Section 4 shape, all
 *    traffic on two hot modules);
 *  - the flat radix tree: the paper's Section 6.2 combining tree
 *    dropped unchanged onto the tiled machine, its nodes striped
 *    across tiles by a topology-oblivious allocator (scatterNodes),
 *    so nearly every node access pays the remote latency;
 *  - the NUMA-aware radix tree (nodes homed in the tile of their
 *    first descendant — ungated reference column);
 *  - the two-level hierarchical barrier (tile-local arrival, one
 *    representative per tile in the global phase, broadcast
 *    wake-down), tile size scaled ~sqrt(N) to balance its levels.
 *
 * Headline metric: completion cycles per processor (mean wait under
 * simultaneous arrival — the latency a compute phase actually pays).
 * The reading the baselines lock in: the hierarchical variant beats
 * the flat radix tree at N >= 1024 — on completion for the adaptive-
 * backoff families (the flat tree pays the remote latency at every
 * one of its log_d(N) levels, the hierarchy exactly once per phase),
 * on remote accesses per processor for the queue family (whose
 * serial FIFO handoff chains trade completion for minimal cross-tile
 * traffic).  The
 * local/remote access split (new counters) shows why, and the bench
 * exits nonzero if either win ever regresses.
 *
 * With --report-out the sweep is pinned as run-report metrics and
 * gated by scripts/check_regression.py (the hier-scale-smoke CI job).
 * The full --nmax 16384 point is documented in EXPERIMENTS.md.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/hierarchical_barrier_sim.hpp"
#include "core/tree_barrier_sim.hpp"

using namespace absync;
using namespace absync::bench;

namespace
{

struct Cell
{
    double accesses = 0.0;   ///< network accesses per processor
    double completion = 0.0; ///< completion cycles per processor
    double remoteShare = 0.0; ///< remote fraction of all accesses
};

Cell
flatCell(std::uint32_t n, const core::BackoffConfig &backoff,
         std::uint64_t remote_latency, std::uint64_t runs,
         std::uint64_t seed, unsigned jobs)
{
    // The centralized barrier has no topology support: every access
    // is a remote hot-module access.  Its simulated completion is
    // charged at latency 1 per access, so scale it by the remote
    // latency to put it on the same axis as the tiled structures
    // (this flatters the flat barrier if anything — its real
    // contention would grow, not scale linearly).
    core::BarrierConfig cfg;
    cfg.processors = n;
    cfg.arrivalWindow = 0;
    cfg.backoff = backoff;
    const auto s = core::BarrierSimulator(cfg).runMany(runs, seed,
                                                      jobs);
    Cell c;
    c.accesses = s.accesses.mean();
    c.completion =
        s.wait.mean() * static_cast<double>(remote_latency);
    c.remoteShare = 1.0;
    return c;
}

Cell
treeCell(std::uint32_t n, std::uint32_t fan_in,
         std::uint32_t tile_size, std::uint64_t local_latency,
         std::uint64_t remote_latency, bool scatter,
         const core::BackoffConfig &backoff, std::uint64_t runs,
         std::uint64_t seed, unsigned jobs)
{
    core::TreeBarrierConfig cfg;
    cfg.processors = n;
    cfg.fanIn = fan_in;
    cfg.arrivalWindow = 0;
    cfg.tileSize = tile_size;
    cfg.scatterNodes = scatter;
    cfg.localLatency = local_latency;
    cfg.remoteLatency = remote_latency;
    cfg.backoff = backoff;
    const auto s = core::TreeBarrierSimulator(cfg).runMany(runs, seed,
                                                           jobs);
    Cell c;
    c.accesses = s.accesses.mean();
    c.completion = s.wait.mean();
    const double total = static_cast<double>(s.localAccesses +
                                             s.remoteAccesses);
    c.remoteShare =
        total > 0.0 ? static_cast<double>(s.remoteAccesses) / total
                    : 0.0;
    return c;
}

Cell
hierCell(std::uint32_t n, std::uint32_t tile_size,
         std::uint64_t local_latency, std::uint64_t remote_latency,
         const core::BackoffConfig &backoff, std::uint64_t runs,
         std::uint64_t seed, unsigned jobs)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = n;
    cfg.tileSize = tile_size;
    cfg.localLatency = local_latency;
    cfg.remoteLatency = remote_latency;
    cfg.arrivalWindow = 0;
    cfg.backoff = backoff;
    const auto s =
        core::HierarchicalBarrierSimulator(cfg).runMany(runs, seed,
                                                        jobs);
    Cell c;
    c.accesses = s.accesses.mean();
    c.completion = s.wait.mean();
    const double total =
        static_cast<double>(s.counters.localAccesses +
                            s.counters.remoteAccesses);
    c.remoteShare = total > 0.0
                        ? static_cast<double>(
                              s.counters.remoteAccesses) /
                              total
                        : 0.0;
    return c;
}

/**
 * Tile size balancing the hierarchy's two serialized levels: the
 * largest power of two <= sqrt(N) (always divides the power-of-four
 * sweep points).  A fixed small tile degenerates at large N — the
 * global phase becomes the flat barrier among N/s representatives.
 */
std::uint32_t
autoTile(std::uint32_t n)
{
    std::uint32_t s = 1;
    while (static_cast<std::uint64_t>(s * 2) * (s * 2) <= n &&
           n % (s * 2) == 0)
        s *= 2;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    support::Options opts(argc, argv,
                          {"runs", "seed", "jobs", "nmax", "tile",
                           "fan", "local-lat", "remote-lat",
                           "report-out"});
    const auto runs =
        static_cast<std::uint64_t>(opts.getInt("runs", 10));
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 29));
    const unsigned jobs = jobsOption(opts);
    const auto nmax =
        static_cast<std::uint32_t>(opts.getInt("nmax", 4096));
    const auto tile =
        static_cast<std::uint32_t>(opts.getInt("tile", 0));
    const auto fan =
        static_cast<std::uint32_t>(opts.getInt("fan", 4));
    const auto local_lat =
        static_cast<std::uint64_t>(opts.getInt("local-lat", 2));
    const auto remote_lat =
        static_cast<std::uint64_t>(opts.getInt("remote-lat", 20));

    printHeader("Extension: hierarchical barriers at 1024-core scale",
                "DESIGN.md §15; Bertuletti et al. / Golab (PAPERS.md)"
                ", beyond Agarwal & Cherian's flat 64-proc model");

    if (tile > 0)
        std::printf("tiles of %u, ", tile);
    else
        std::printf("tile size ~sqrt(N), ");
    std::printf("local latency %llu, remote latency %llu, radix "
                "tree fan-in %u, A = 0\n",
                static_cast<unsigned long long>(local_lat),
                static_cast<unsigned long long>(remote_lat), fan);

    obs::RunReport report(
        "ext_hierarchical_scale",
        "Flat vs radix tree vs two-level hierarchical barrier over a "
        "tiled topology, N=256..16384");

    struct Family
    {
        const char *key;
        const char *label;
        core::BackoffConfig backoff;
        /**
         * What the N >= 1024 gate holds for this family.  The
         * adaptive-backoff families must win on completion cycles —
         * the headline claim.  The queue family's FIFO handoff
         * chains are serial by construction (O(sqrt N) chain length
         * against the tree's parallel per-node chains), so it can
         * never win completion at scale; its win — and its gate —
         * is *remote* accesses per processor, the cross-tile
         * interconnect traffic a NUMA machine actually charges for,
         * which the two-level shape holds near-constant while the
         * scattered tree pays it on nearly every access.
         */
        bool gateOnCompletion;
    };
    const std::vector<Family> families = {
        {"exp2", "spin + exponential backoff (base 2)",
         core::BackoffConfig::fromString("exp2"), true},
        {"exp8", "spin + exponential backoff (base 8)",
         core::BackoffConfig::fromString("exp8"), true},
        {"queue", "local-spin queue",
         core::BackoffConfig::queue(), false},
    };

    std::vector<std::uint32_t> ns;
    for (std::uint32_t n = 256; n <= nmax; n *= 4)
        ns.push_back(n);

    int violations = 0;
    std::uint64_t cell_seed = seed;
    for (const Family &fam : families) {
        support::Table t({"N", "tile", "flat compl",
                          "flat tree compl", "numa tree compl",
                          "hier compl", "hier acc/proc",
                          "hier remote share", "flat tree/hier"});
        for (const std::uint32_t n : ns) {
            const std::uint32_t s = tile > 0 ? tile : autoTile(n);
            const Cell flat = flatCell(n, fam.backoff, remote_lat,
                                       runs, cell_seed++, jobs);
            const Cell flat_tree =
                treeCell(n, fan, s, local_lat, remote_lat, true,
                         fam.backoff, runs, cell_seed++, jobs);
            const Cell numa_tree =
                treeCell(n, fan, s, local_lat, remote_lat, false,
                         fam.backoff, runs, cell_seed++, jobs);
            const Cell hier =
                hierCell(n, s, local_lat, remote_lat, fam.backoff,
                         runs, cell_seed++, jobs);
            const double hier_remote =
                hier.accesses * hier.remoteShare;
            const double tree_remote =
                flat_tree.accesses * flat_tree.remoteShare;
            const double win =
                fam.gateOnCompletion
                    ? (hier.completion > 0.0
                           ? flat_tree.completion / hier.completion
                           : 0.0)
                    : (hier_remote > 0.0 ? tree_remote / hier_remote
                                         : 0.0);
            t.addRow({std::to_string(n), std::to_string(s),
                      support::fmt(flat.completion, 0),
                      support::fmt(flat_tree.completion, 0),
                      support::fmt(numa_tree.completion, 0),
                      support::fmt(hier.completion, 0),
                      support::fmt(hier.accesses, 1),
                      support::fmt(hier.remoteShare, 3),
                      support::fmt(win, 2)});

            const std::string prefix = "hs.n" + std::to_string(n) +
                                       "." + fam.key;
            report.addMetric(prefix + ".flat.completion",
                             flat.completion);
            report.addMetric(prefix + ".flat_tree.completion",
                             flat_tree.completion);
            report.addMetric(prefix + ".numa_tree.completion",
                             numa_tree.completion);
            report.addMetric(prefix + ".hier.completion",
                             hier.completion);
            report.addMetric(prefix + ".hier.accesses",
                             hier.accesses);
            report.addMetric(prefix + ".hier.remote_share",
                             hier.remoteShare);
            report.addMetric(prefix + ".flat_tree.accesses",
                             flat_tree.accesses);
            report.addMetric(prefix + ".win.flat_tree_over_hier",
                             win);

            // The acceptance bar this bench exists to hold: at
            // N >= 1024 the two-level hierarchy must beat the flat
            // (topology-oblivious) radix tree over the same machine
            // — on completion cycles for the backoff families, on
            // accesses per processor for the queue family.
            if (n >= 1024 && win <= 1.0) {
                std::fprintf(
                    stderr,
                    "VIOLATION: hierarchical (%0.0f) did not beat "
                    "the flat radix tree (%0.0f) on %s at N=%u, "
                    "family %s\n",
                    fam.gateOnCompletion ? hier.completion
                                         : hier_remote,
                    fam.gateOnCompletion ? flat_tree.completion
                                         : tree_remote,
                    fam.gateOnCompletion ? "completion cycles"
                                         : "remote accesses/proc",
                    n, fam.key);
                ++violations;
            }
        }
        std::printf("\n%s:\n%s", fam.label, t.str().c_str());
    }

    std::printf(
        "\nReading: the flat radix tree pays the remote latency at "
        "every one of its log_d(N) levels — a topology-oblivious "
        "allocator stripes its nodes across tiles — while the "
        "hierarchy keeps all but one access per tile inside the tile "
        "(see the remote-share column) and pays the cross-tile price "
        "exactly once per phase.  The flat centralized barrier's two "
        "hot modules serialize all N processors and leave contention "
        "entirely.  The NUMA-aware tree (first-descendant node "
        "homing) is shown as an ungated reference.  The queue "
        "family's column tells the other half of the story: its "
        "serial handoff chains lose on completion at scale, but its "
        "remote accesses per processor stay near-constant at about "
        "half an access — two orders of magnitude below the "
        "scattered tree's cross-tile traffic — which is the win its "
        "gate holds.\n");

    maybeWriteRunReport(opts, report);
    if (violations > 0) {
        std::fprintf(stderr,
                     "%d scaling violation(s) — see above\n",
                     violations);
        return 1;
    }
    return 0;
}
