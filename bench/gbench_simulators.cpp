/**
 * @file
 * google-benchmark microbenchmarks of the *simulators themselves*:
 * episodes (or cycles) simulated per second.  A reproduction you
 * cannot iterate on quickly is a reproduction nobody sweeps; these
 * numbers tell users what parameter grids are affordable.
 *
 * Like gbench_runtime, every bench attaches telemetry-schema custom
 * counters (tele.*) to its JSON output — here sourced from the
 * simulators' episode results rather than the thread-local
 * CounterRegistry, so BENCH_simulators.json carries the same
 * per-episode traffic accounting as the runtime benches.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "coherence/coherence_sim.hpp"
#include "core/barrier_sim.hpp"
#include "core/hierarchical_barrier_sim.hpp"
#include "core/tree_barrier_sim.hpp"
#include "sim/buffered_multistage.hpp"
#include "sim/multistage.hpp"
#include "trace/apps.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"

using namespace absync;

namespace
{

/** Attach an episode's counter snapshot as tele.<name>/episode
 *  custom counters (last episode wins; episodes are seeded and
 *  statistically identical). */
void
attachEpisodeCounters(benchmark::State &state,
                      const obs::CounterSnapshot &counters)
{
    counters.forEach([&](const char *name, std::uint64_t v) {
        if (v == 0)
            return;
        state.counters[std::string("tele.") + name + "/episode"] =
            static_cast<double>(v);
    });
}

void
BM_BarrierEpisode(benchmark::State &state)
{
    core::BarrierConfig cfg;
    cfg.processors = static_cast<std::uint32_t>(state.range(0));
    cfg.arrivalWindow = 1000;
    core::BarrierSimulator sim(cfg);
    support::Rng rng(1);
    core::EpisodeResult last;
    for (auto _ : state) {
        last = sim.runOnce(rng);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations());
    attachEpisodeCounters(state, last.counters);
}

/**
 * The event-driven engine's headline case: exponential flag backoff
 * base 8 over a wide arrival window leaves the episode overwhelmingly
 * idle, so the time-skip core executes a few percent of the spanned
 * cycles.  Tracked by the timing-regression gate against
 * bench/baselines/BASELINE_gbench_timing.json, whose pre-event-core
 * reference numbers document the speedup.
 */
void
BM_EpisodeLargeN(benchmark::State &state)
{
    core::BarrierConfig cfg;
    cfg.processors = static_cast<std::uint32_t>(state.range(0));
    cfg.arrivalWindow = 1000;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    core::BarrierSimulator sim(cfg);
    support::Rng rng(1);
    core::EpisodeResult last;
    for (auto _ : state) {
        last = sim.runOnce(rng);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations());
    attachEpisodeCounters(state, last.counters);
    state.counters["cycles_skipped/episode"] =
        static_cast<double>(last.cyclesSkipped);
    state.counters["events_processed/episode"] =
        static_cast<double>(last.eventsProcessed);
}

/**
 * The same episode on the reference cycle stepper — the engine the
 * event core replaced.  Kept so the speedup is measured, not assumed:
 * the regression gate asserts BM_EpisodeLargeN beats this by >= 5x
 * (a machine-independent ratio), and the JSON artifacts document the
 * before/after.
 */
void
BM_EpisodeLargeNReference(benchmark::State &state)
{
    core::BarrierConfig cfg;
    cfg.processors = static_cast<std::uint32_t>(state.range(0));
    cfg.arrivalWindow = 1000;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    core::BarrierSimulator sim(cfg);
    support::Rng rng(1);
    core::EpisodeResult last;
    for (auto _ : state) {
        last = sim.runOnceReference(rng);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations());
    attachEpisodeCounters(state, last.counters);
}

/** Shared shape for the two hierarchical engine benches below:
 *  tile ~sqrt(N), exp8 backoff over a wide arrival window — the
 *  regime the 1024-core sweeps (ext_hierarchical_scale) live in. */
core::HierarchicalBarrierConfig
hierBenchConfig(std::uint32_t n)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = n;
    std::uint32_t s = 1;
    while (static_cast<std::uint64_t>(s * 2) * (s * 2) <= n &&
           n % (s * 2) == 0)
        s *= 2;
    cfg.tileSize = s;
    cfg.localLatency = 2;
    cfg.remoteLatency = 20;
    cfg.arrivalWindow = 1000;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    return cfg;
}

/**
 * Hierarchical (two-level tiled) episode on the event-driven engine.
 * Tracked by the timing-regression gate; paired with the reference
 * stepper below through the speedup floor, so the time-skip core's
 * advantage is measured on the topology path too (latency > 1 keeps
 * Transit hops in flight — the engine must still skip the idle gaps).
 */
void
BM_EpisodeHier(benchmark::State &state)
{
    core::HierarchicalBarrierSimulator sim(
        hierBenchConfig(static_cast<std::uint32_t>(state.range(0))));
    support::Rng rng(1);
    core::EpisodeResult last;
    for (auto _ : state) {
        last = sim.runOnce(rng);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations());
    attachEpisodeCounters(state, last.counters);
    state.counters["cycles_skipped/episode"] =
        static_cast<double>(last.cyclesSkipped);
    state.counters["events_processed/episode"] =
        static_cast<double>(last.eventsProcessed);
}

/** The same hierarchical episode on the reference cycle stepper —
 *  kept so the event engine's speedup stays measured, not assumed. */
void
BM_EpisodeHierReference(benchmark::State &state)
{
    core::HierarchicalBarrierSimulator sim(
        hierBenchConfig(static_cast<std::uint32_t>(state.range(0))));
    support::Rng rng(1);
    core::EpisodeResult last;
    for (auto _ : state) {
        last = sim.runOnceReference(rng);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations());
    attachEpisodeCounters(state, last.counters);
}

/**
 * Sweep throughput with the deterministic episode pool: one
 * runMany(64 episodes) per iteration, parallelized across range(0)
 * workers.  The summary is bitwise identical for every worker count
 * (tests/core/test_parallel_runmany.cpp); only the wall clock moves.
 */
void
BM_SweepThroughput(benchmark::State &state)
{
    core::BarrierConfig cfg;
    cfg.processors = 64;
    cfg.arrivalWindow = 1000;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    core::BarrierSimulator sim(cfg);
    const auto jobs = static_cast<unsigned>(state.range(0));
    constexpr std::uint64_t kRuns = 64;
    core::EpisodeSummary last;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        last = sim.runMany(kRuns, seed++, jobs);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations() * kRuns);
    state.counters["jobs"] = static_cast<double>(jobs);
    state.counters["cycles_skipped/episode"] =
        static_cast<double>(last.cyclesSkipped) /
        static_cast<double>(kRuns);
}

void
BM_TreeBarrierEpisode(benchmark::State &state)
{
    core::TreeBarrierConfig cfg;
    cfg.processors = static_cast<std::uint32_t>(state.range(0));
    cfg.fanIn = 4;
    cfg.arrivalWindow = 1000;
    core::TreeBarrierSimulator sim(cfg);
    support::Rng rng(1);
    core::TreeEpisodeResult last;
    for (auto _ : state) {
        last = sim.runOnce(rng);
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations());
    // Tree episodes report per-processor vectors, not a snapshot:
    // publish the same two headline quantities the runtime benches
    // expose — total accesses and mean wait per episode.
    std::uint64_t accesses = 0;
    double wait_sum = 0.0;
    for (const std::uint64_t a : last.accesses)
        accesses += a;
    for (const std::uint64_t w : last.waits)
        wait_sum += static_cast<double>(w);
    state.counters["tele.accesses/episode"] =
        static_cast<double>(accesses);
    state.counters["tele.wait_mean/episode"] =
        last.waits.empty()
            ? 0.0
            : wait_sum / static_cast<double>(last.waits.size());
}

void
BM_OmegaNetwork(benchmark::State &state)
{
    for (auto _ : state) {
        sim::MultistageConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = 0.5;
        cfg.cycles = static_cast<std::uint64_t>(state.range(0));
        benchmark::DoNotOptimize(sim::MultistageNetwork(cfg).run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_BufferedNetwork(benchmark::State &state)
{
    sim::BufferedNetStats last;
    for (auto _ : state) {
        sim::BufferedNetConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = 0.3;
        cfg.cycles = static_cast<std::uint64_t>(state.range(0));
        last = sim::BufferedMultistageNetwork(cfg).run();
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["tele.delivered/run"] =
        static_cast<double>(last.delivered);
    state.counters["tele.avg_queue_occ/run"] = last.avgQueueOccupancy;
}

void
BM_ScheduleAndCoherence(benchmark::State &state)
{
    const auto prog =
        trace::SpmdProgram::parse(trace::makeAppTrace("simple", 0.05));
    for (auto _ : state) {
        coherence::CoherenceConfig ccfg;
        ccfg.processors = 64;
        ccfg.pointerLimit = 4;
        coherence::CoherenceSimulator sim(ccfg);
        std::uint64_t refs = 0;
        trace::PostMortemScheduler(prog, 64)
            .run([&](const trace::MpRef &r) {
                sim.access(r);
                ++refs;
            });
        benchmark::DoNotOptimize(refs);
        state.counters["refs"] = static_cast<double>(refs);
        const coherence::CoherenceStats &st = sim.stats();
        state.counters["tele.sync_refs/run"] =
            static_cast<double>(st.syncRefs);
        state.counters["tele.inval_messages/run"] =
            static_cast<double>(st.invalMessages);
        state.counters["tele.transactions/run"] =
            static_cast<double>(st.totalTransactions());
    }
}

} // namespace

BENCHMARK(BM_BarrierEpisode)->Arg(64)->Arg(512);
BENCHMARK(BM_EpisodeLargeN)->Arg(64)->Arg(256);
BENCHMARK(BM_EpisodeLargeNReference)->Arg(64);
BENCHMARK(BM_EpisodeHier)->Arg(256)->Arg(1024);
BENCHMARK(BM_EpisodeHierReference)->Arg(256);
BENCHMARK(BM_SweepThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_TreeBarrierEpisode)->Arg(64)->Arg(512);
BENCHMARK(BM_OmegaNetwork)->Arg(5000);
BENCHMARK(BM_BufferedNetwork)->Arg(5000);
BENCHMARK(BM_ScheduleAndCoherence);

BENCHMARK_MAIN();
