/**
 * @file
 * google-benchmark microbenchmarks of the *simulators themselves*:
 * episodes (or cycles) simulated per second.  A reproduction you
 * cannot iterate on quickly is a reproduction nobody sweeps; these
 * numbers tell users what parameter grids are affordable.
 */

#include <benchmark/benchmark.h>

#include "coherence/coherence_sim.hpp"
#include "core/barrier_sim.hpp"
#include "core/tree_barrier_sim.hpp"
#include "sim/buffered_multistage.hpp"
#include "sim/multistage.hpp"
#include "trace/apps.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"

using namespace absync;

namespace
{

void
BM_BarrierEpisode(benchmark::State &state)
{
    core::BarrierConfig cfg;
    cfg.processors = static_cast<std::uint32_t>(state.range(0));
    cfg.arrivalWindow = 1000;
    core::BarrierSimulator sim(cfg);
    support::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.runOnce(rng));
    state.SetItemsProcessed(state.iterations());
}

void
BM_TreeBarrierEpisode(benchmark::State &state)
{
    core::TreeBarrierConfig cfg;
    cfg.processors = static_cast<std::uint32_t>(state.range(0));
    cfg.fanIn = 4;
    cfg.arrivalWindow = 1000;
    core::TreeBarrierSimulator sim(cfg);
    support::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.runOnce(rng));
    state.SetItemsProcessed(state.iterations());
}

void
BM_OmegaNetwork(benchmark::State &state)
{
    for (auto _ : state) {
        sim::MultistageConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = 0.5;
        cfg.cycles = static_cast<std::uint64_t>(state.range(0));
        benchmark::DoNotOptimize(sim::MultistageNetwork(cfg).run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_BufferedNetwork(benchmark::State &state)
{
    for (auto _ : state) {
        sim::BufferedNetConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = 0.3;
        cfg.cycles = static_cast<std::uint64_t>(state.range(0));
        benchmark::DoNotOptimize(
            sim::BufferedMultistageNetwork(cfg).run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_ScheduleAndCoherence(benchmark::State &state)
{
    const auto prog =
        trace::SpmdProgram::parse(trace::makeAppTrace("simple", 0.05));
    for (auto _ : state) {
        coherence::CoherenceConfig ccfg;
        ccfg.processors = 64;
        ccfg.pointerLimit = 4;
        coherence::CoherenceSimulator sim(ccfg);
        std::uint64_t refs = 0;
        trace::PostMortemScheduler(prog, 64)
            .run([&](const trace::MpRef &r) {
                sim.access(r);
                ++refs;
            });
        benchmark::DoNotOptimize(refs);
        state.counters["refs"] = static_cast<double>(refs);
    }
}

} // namespace

BENCHMARK(BM_BarrierEpisode)->Arg(64)->Arg(512);
BENCHMARK(BM_TreeBarrierEpisode)->Arg(64)->Arg(512);
BENCHMARK(BM_OmegaNetwork)->Arg(5000);
BENCHMARK(BM_BufferedNetwork)->Arg(5000);
BENCHMARK(BM_ScheduleAndCoherence);

BENCHMARK_MAIN();
