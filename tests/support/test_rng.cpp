/** @file Unit tests for support::Rng. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/rng.hpp"

using absync::support::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a());
    a.reseed(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(7, 7), 7u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.uniformInt(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntApproximatelyUniform)
{
    Rng r(13);
    std::vector<int> counts(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[r.uniformInt(0, 7)];
    for (int c : counts) {
        EXPECT_NEAR(c, n / 8, n / 8 / 10); // within 10 %
    }
}

TEST(Rng, IndexInBounds)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.index(13), 13u);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng r(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitGivesIndependentStream)
{
    Rng a(31);
    Rng child = a.split();
    // The child stream should not simply replay the parent.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == child()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~0ULL);
    Rng r(1);
    std::vector<int> v{1, 2, 3, 4, 5};
    std::shuffle(v.begin(), v.end(), r); // must compile and run
    EXPECT_EQ(v.size(), 5u);
}
