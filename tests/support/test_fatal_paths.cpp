/** @file Death tests for the fatal parse-from-string paths: typos in
 *        sweep scripts must fail loudly, not run the wrong
 *        experiment. */

#include <gtest/gtest.h>

#include "core/backoff.hpp"
#include "core/hierarchical_barrier_sim.hpp"
#include "core/resource_sim.hpp"
#include "sim/memory_module.hpp"
#include "sim/multistage.hpp"
#include "sim/topology.hpp"

namespace
{

void
badBackoffPreset()
{
    auto c = absync::core::BackoffConfig::fromString("warpdrive");
    (void)c;
}

void
badArbitration()
{
    auto a = absync::sim::arbitrationFromString("psychic");
    (void)a;
}

void
badNetBackoff()
{
    auto s = absync::sim::netBackoffFromString("sideways");
    (void)s;
}

void
badResourcePolicy()
{
    auto p = absync::core::resourceWaitPolicyFromString("nap");
    (void)p;
}

} // namespace

TEST(FatalPaths, UnknownBackoffPreset)
{
    EXPECT_EXIT(badBackoffPreset(), ::testing::ExitedWithCode(2),
                "unknown backoff preset");
}

TEST(FatalPaths, UnknownArbitration)
{
    EXPECT_EXIT(badArbitration(), ::testing::ExitedWithCode(2),
                "unknown arbitration");
}

TEST(FatalPaths, UnknownNetBackoff)
{
    EXPECT_EXIT(badNetBackoff(), ::testing::ExitedWithCode(2),
                "unknown network backoff");
}

TEST(FatalPaths, UnknownResourcePolicy)
{
    EXPECT_EXIT(badResourcePolicy(), ::testing::ExitedWithCode(2),
                "unknown resource wait policy");
}

TEST(FatalPaths, KnownNamesStillParse)
{
    // Guard against over-eager matching: every documented name must
    // continue to parse.
    for (const char *name :
         {"none", "var", "exp2", "exp8", "lin4", "const4"}) {
        EXPECT_NO_FATAL_FAILURE(
            absync::core::BackoffConfig::fromString(name));
    }
    for (const char *name : {"random", "rr", "fifo"}) {
        EXPECT_NO_FATAL_FAILURE(
            absync::sim::arbitrationFromString(name));
    }
}

// ---- Topology construction: every invalid shape fails fast ----------
//
// A tile size that does not divide N would silently mis-route the
// edge tile; a zero-latency link would let the event engines schedule
// a response before its request.  Both must die at construction, not
// corrupt an episode.

TEST(FatalPaths, TopologyZeroProcessors)
{
    EXPECT_EXIT(absync::sim::Topology(0, 1),
                ::testing::ExitedWithCode(2),
                "processor count must be >= 1");
}

TEST(FatalPaths, TopologyZeroTileSize)
{
    EXPECT_EXIT(absync::sim::Topology(16, 0),
                ::testing::ExitedWithCode(2),
                "tile size 0 invalid for 16 processors");
}

TEST(FatalPaths, TopologyTileLargerThanMachine)
{
    EXPECT_EXIT(absync::sim::Topology(8, 16),
                ::testing::ExitedWithCode(2),
                "tile size 16 invalid for 8 processors");
}

TEST(FatalPaths, TopologyTileMustDivideProcessors)
{
    EXPECT_EXIT(absync::sim::Topology(10, 4),
                ::testing::ExitedWithCode(2),
                "10 processors not divisible by tile size 4");
}

TEST(FatalPaths, TopologyZeroLatencyLinks)
{
    EXPECT_EXIT(absync::sim::Topology(8, 4, 0, 8),
                ::testing::ExitedWithCode(2),
                "zero-latency local link");
    EXPECT_EXIT(absync::sim::Topology(8, 4, 1, 0),
                ::testing::ExitedWithCode(2),
                "zero-latency remote link");
}

TEST(FatalPaths, TopologyRemoteBelowLocal)
{
    EXPECT_EXIT(absync::sim::Topology(8, 4, 8, 2),
                ::testing::ExitedWithCode(2),
                "remote latency 2 below local latency 8");
}

TEST(FatalPaths, TopologyValidShapesConstruct)
{
    // Boundary shapes that must keep working: one tile, all-singleton
    // tiles, equal local/remote latency.
    EXPECT_NO_FATAL_FAILURE(absync::sim::Topology(16, 16));
    EXPECT_NO_FATAL_FAILURE(absync::sim::Topology(16, 1));
    EXPECT_NO_FATAL_FAILURE(absync::sim::Topology(16, 4, 3, 3));
}

TEST(FatalPaths, HierarchicalSimRejectsControllerBackoff)
{
    // Section 8 controller backoff acts on denials of a flat module
    // pair; it has no defined meaning across two levels of modules.
    absync::core::HierarchicalBarrierConfig cfg;
    cfg.backoff.controllerBackoff = true;
    EXPECT_EXIT(absync::core::HierarchicalBarrierSimulator{cfg},
                ::testing::ExitedWithCode(2),
                "controller backoff is not supported");
}
