/** @file Death tests for the fatal parse-from-string paths: typos in
 *        sweep scripts must fail loudly, not run the wrong
 *        experiment. */

#include <gtest/gtest.h>

#include "core/backoff.hpp"
#include "core/resource_sim.hpp"
#include "sim/memory_module.hpp"
#include "sim/multistage.hpp"

namespace
{

void
badBackoffPreset()
{
    auto c = absync::core::BackoffConfig::fromString("warpdrive");
    (void)c;
}

void
badArbitration()
{
    auto a = absync::sim::arbitrationFromString("psychic");
    (void)a;
}

void
badNetBackoff()
{
    auto s = absync::sim::netBackoffFromString("sideways");
    (void)s;
}

void
badResourcePolicy()
{
    auto p = absync::core::resourceWaitPolicyFromString("nap");
    (void)p;
}

} // namespace

TEST(FatalPaths, UnknownBackoffPreset)
{
    EXPECT_EXIT(badBackoffPreset(), ::testing::ExitedWithCode(2),
                "unknown backoff preset");
}

TEST(FatalPaths, UnknownArbitration)
{
    EXPECT_EXIT(badArbitration(), ::testing::ExitedWithCode(2),
                "unknown arbitration");
}

TEST(FatalPaths, UnknownNetBackoff)
{
    EXPECT_EXIT(badNetBackoff(), ::testing::ExitedWithCode(2),
                "unknown network backoff");
}

TEST(FatalPaths, UnknownResourcePolicy)
{
    EXPECT_EXIT(badResourcePolicy(), ::testing::ExitedWithCode(2),
                "unknown resource wait policy");
}

TEST(FatalPaths, KnownNamesStillParse)
{
    // Guard against over-eager matching: every documented name must
    // continue to parse.
    for (const char *name :
         {"none", "var", "exp2", "exp8", "lin4", "const4"}) {
        EXPECT_NO_FATAL_FAILURE(
            absync::core::BackoffConfig::fromString(name));
    }
    for (const char *name : {"random", "rr", "fifo"}) {
        EXPECT_NO_FATAL_FAILURE(
            absync::sim::arbitrationFromString(name));
    }
}
