/** @file Unit tests for the ASCII table formatter. */

#include <gtest/gtest.h>

#include "support/table.hpp"

using absync::support::fmt;
using absync::support::fmtPercent;
using absync::support::Table;

TEST(Table, RendersHeaderAndRows)
{
    Table t({"N", "value"});
    t.addRow({"64", "160.0"});
    const std::string s = t.str();
    EXPECT_NE(s.find("N"), std::string::npos);
    EXPECT_NE(s.find("value"), std::string::npos);
    EXPECT_NE(s.find("64"), std::string::npos);
    EXPECT_NE(s.find("160.0"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumericRowHelper)
{
    Table t({"label", "a", "b"});
    t.addRow("x", {1.234, 5.678}, 2);
    const std::string s = t.str();
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("5.68"), std::string::npos);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, ColumnsAligned)
{
    Table t({"a", "b"});
    t.addRow({"short", "x"});
    t.addRow({"muchlongervalue", "y"});
    const std::string s = t.str();
    // 'x' and 'y' columns must start at the same offset on their lines.
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < s.size()) {
        auto nl = s.find('\n', pos);
        lines.push_back(s.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[2].find('x'), lines[3].find('y'));
}

TEST(TableFmt, FixedPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(TableFmt, Percent)
{
    EXPECT_EQ(fmtPercent(0.952, 1), "95.2%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Table, CsvOutput)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1.5"});
    t.addRow({"with,comma", "2"});
    t.addRow({"with\"quote", "3"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,1.5\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(Table, EmptyTableRendersHeaderOnly)
{
    Table t({"alpha", "beta"});
    EXPECT_EQ(t.rows(), 0u);
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    const std::string csv = t.csv();
    EXPECT_EQ(csv, "alpha,beta\n");
}

TEST(Table, CsvQuotesEmbeddedNewlines)
{
    Table t({"k", "v"});
    t.addRow({"multi\nline", "1"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"multi\nline\",1\n"), std::string::npos);
}

TEST(Table, CsvHeaderCellsAreQuotedToo)
{
    Table t({"a,b", "c"});
    t.addRow({"1", "2"});
    EXPECT_NE(t.csv().find("\"a,b\",c\n"), std::string::npos);
}

TEST(TableFmt, PercentOfZeroAndNegative)
{
    EXPECT_EQ(fmtPercent(0.0, 1), "0.0%");
    // fmt itself must carry signs through for deltas in benches.
    EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}
