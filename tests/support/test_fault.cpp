/**
 * @file
 * FaultPlan determinism and bounds.
 *
 * The whole value of the plan is reproducibility: every query is a
 * pure function of (seed, kind, coordinates), so two plans built from
 * the same config must agree on everything, and the materialized
 * schedule() must be bit-identical across instances.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "support/fault.hpp"

using namespace absync::support;

namespace
{

FaultPlanConfig
busyConfig(std::uint64_t seed)
{
    FaultPlanConfig cfg;
    cfg.seed = seed;
    cfg.stragglerProb = 0.3;
    cfg.stragglerMin = 10;
    cfg.stragglerMax = 50;
    cfg.crashProb = 0.05;
    cfg.spuriousWakeProb = 0.2;
    cfg.dropProb = 0.1;
    cfg.delayProb = 0.1;
    cfg.delayMin = 2;
    cfg.delayMax = 8;
    cfg.stallProb = 0.1;
    return cfg;
}

} // namespace

TEST(FaultPlan, SameSeedIdenticalSchedule)
{
    const FaultPlan a(busyConfig(42));
    const FaultPlan b(busyConfig(42));
    const auto sa = a.schedule(16, 32);
    const auto sb = b.schedule(16, 32);
    EXPECT_FALSE(sa.empty()); // the config is busy enough to fire
    EXPECT_EQ(sa, sb);
}

TEST(FaultPlan, SameSeedIdenticalPointQueries)
{
    const FaultPlan a(busyConfig(7));
    const FaultPlan b(busyConfig(7));
    for (std::uint32_t p = 0; p < 8; ++p) {
        EXPECT_EQ(a.crashPhase(p), b.crashPhase(p));
        for (std::uint64_t i = 0; i < 64; ++i) {
            EXPECT_EQ(a.stragglerDelay(p, i), b.stragglerDelay(p, i));
            EXPECT_EQ(a.spuriousWake(p, i), b.spuriousWake(p, i));
            EXPECT_EQ(a.dropPacket(p, i), b.dropPacket(p, i));
            EXPECT_EQ(a.packetDelay(p, i), b.packetDelay(p, i));
            EXPECT_EQ(a.moduleStalled(p, i), b.moduleStalled(p, i));
        }
    }
}

TEST(FaultPlan, QueriesArePureAcrossCopies)
{
    // Copies must be interchangeable with the original: the plan is a
    // pure function of its config, with no hidden mutable state that
    // querying could advance (a stateful RNG inside would make the
    // copy and the original diverge after the first call).
    const FaultPlan original(busyConfig(12));
    // Query the original first, so any hidden state would be advanced
    // before the copy is taken.
    const auto before = original.schedule(8, 16);
    const FaultPlan copy = original;
    const auto after = original.schedule(8, 16);
    EXPECT_EQ(before, after) << "schedule() mutated the plan";
    EXPECT_EQ(copy.schedule(8, 16), before);
    for (std::uint32_t p = 0; p < 8; ++p) {
        EXPECT_EQ(copy.crashPhase(p), original.crashPhase(p));
        for (std::uint64_t i = 0; i < 32; ++i) {
            EXPECT_EQ(copy.stragglerDelay(p, i),
                      original.stragglerDelay(p, i));
            EXPECT_EQ(copy.spuriousWake(p, i),
                      original.spuriousWake(p, i));
            EXPECT_EQ(copy.packetDelay(p, i),
                      original.packetDelay(p, i));
        }
    }
    // Repeated point queries on the same instance must also be
    // stable (idempotence, the other half of purity).
    EXPECT_EQ(original.stragglerDelay(3, 5),
              original.stragglerDelay(3, 5));
    EXPECT_EQ(original.crashPhase(3), original.crashPhase(3));
}

TEST(FaultPlan, DifferentSeedDifferentSchedule)
{
    const FaultPlan a(busyConfig(1));
    const FaultPlan b(busyConfig(2));
    EXPECT_NE(a.schedule(16, 32), b.schedule(16, 32));
}

TEST(FaultPlan, ZeroProbabilitiesMeanNoFaults)
{
    FaultPlanConfig cfg;
    cfg.seed = 99; // defaults: every probability is 0
    const FaultPlan plan(cfg);
    EXPECT_TRUE(plan.schedule(32, 64).empty());
    for (std::uint32_t p = 0; p < 8; ++p) {
        EXPECT_EQ(plan.crashPhase(p), UINT64_MAX);
        for (std::uint64_t i = 0; i < 32; ++i) {
            EXPECT_EQ(plan.stragglerDelay(p, i), 0u);
            EXPECT_FALSE(plan.spuriousWake(p, i));
            EXPECT_FALSE(plan.dropPacket(p, i));
            EXPECT_EQ(plan.packetDelay(p, i), 0u);
            EXPECT_FALSE(plan.moduleStalled(p, i));
        }
    }
}

TEST(FaultPlan, DelaysRespectConfiguredBounds)
{
    const FaultPlan plan(busyConfig(13));
    const auto &cfg = plan.config();
    for (std::uint32_t p = 0; p < 16; ++p) {
        for (std::uint64_t i = 0; i < 256; ++i) {
            const auto straggle = plan.stragglerDelay(p, i);
            if (straggle != 0) {
                EXPECT_GE(straggle, cfg.stragglerMin);
                EXPECT_LE(straggle, cfg.stragglerMax);
            }
            const auto delay = plan.packetDelay(p, i);
            if (delay != 0) {
                EXPECT_GE(delay, cfg.delayMin);
                EXPECT_LE(delay, cfg.delayMax);
            }
        }
    }
}

TEST(FaultPlan, CrashIsPermanent)
{
    // crashed() is monotone: false strictly before crashPhase, true
    // from it onward.
    const FaultPlan plan(busyConfig(23));
    for (std::uint32_t p = 0; p < 32; ++p) {
        const auto at = plan.crashPhase(p);
        if (at == UINT64_MAX) {
            EXPECT_FALSE(plan.crashed(p, 1u << 20));
            continue;
        }
        if (at > 0) {
            EXPECT_FALSE(plan.crashed(p, at - 1));
        }
        EXPECT_TRUE(plan.crashed(p, at));
        EXPECT_TRUE(plan.crashed(p, at + 1));
        EXPECT_TRUE(plan.crashed(p, at + 1000));
    }
}

TEST(FaultPlan, ProbabilityRoughlyControlsRate)
{
    // Not a statistical test, just a sanity check that the knob is
    // connected: at 30% straggler probability over 16x256 samples the
    // hit count must be far from 0 and far from all.
    const FaultPlan plan(busyConfig(31));
    std::uint64_t hits = 0;
    const std::uint64_t samples = 16 * 256;
    for (std::uint32_t p = 0; p < 16; ++p)
        for (std::uint64_t i = 0; i < 256; ++i)
            hits += plan.stragglerDelay(p, i) != 0 ? 1 : 0;
    EXPECT_GT(hits, samples / 10);
    EXPECT_LT(hits, samples / 2);
}

TEST(FaultPlan, KindsAreIndependentStreams)
{
    // The same coordinates must not produce correlated answers across
    // kinds (the kind participates in the mix).  With equal 10% rates
    // drop and stall decisions at identical coordinates should
    // disagree somewhere.
    FaultPlanConfig cfg;
    cfg.seed = 5;
    cfg.dropProb = 0.5;
    cfg.stallProb = 0.5;
    const FaultPlan plan(cfg);
    bool differs = false;
    for (std::uint32_t p = 0; p < 8 && !differs; ++p)
        for (std::uint64_t i = 0; i < 64 && !differs; ++i)
            differs = plan.dropPacket(p, i) != plan.moduleStalled(p, i);
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, DealsSlotsInArrivalOrder)
{
    FaultPlanConfig cfg;
    cfg.seed = 3;
    cfg.stragglerProb = 1.0; // every slot straggles
    cfg.stragglerMin = 5;
    cfg.stragglerMax = 9;
    const FaultPlan plan(cfg);
    FaultInjector inj(plan, 4);
    // The k-th arrival consumes slot (k % parties, k / parties).
    for (std::uint64_t k = 0; k < 12; ++k) {
        const auto expect = plan.stragglerDelay(
            static_cast<std::uint32_t>(k % 4), k / 4);
        EXPECT_EQ(inj.onArrive(), expect);
        EXPECT_GE(expect, cfg.stragglerMin);
        EXPECT_LE(expect, cfg.stragglerMax);
    }
    EXPECT_EQ(inj.arrivals(), 12u);
}

TEST(FaultInjector, QuietPlanInjectsNothing)
{
    const FaultPlan plan(FaultPlanConfig{});
    FaultInjector inj(plan, 8);
    for (int k = 0; k < 32; ++k) {
        EXPECT_EQ(inj.onArrive(), 0u);
        EXPECT_FALSE(inj.onWake());
    }
}

TEST(FaultPlan, ArrivalQueriesArePureAndOrderFree)
{
    FaultPlanConfig cfg;
    cfg.seed = 17;
    cfg.stragglerProb = 0.4;
    cfg.stragglerMin = 3;
    cfg.stragglerMax = 30;
    cfg.arrivalTimeoutProb = 0.25;
    const FaultPlan a(cfg);
    const FaultPlan b(cfg);

    // Forward on one plan, backward on its twin, then revisits: pure
    // functions of (seed, kind, arrival index), so every answer must
    // agree regardless of query order or interleaving.
    for (std::uint64_t k = 0; k < 500; ++k) {
        const std::uint64_t r = 499 - k;
        EXPECT_EQ(a.arrivalStragglerDelay(k),
                  b.arrivalStragglerDelay(k));
        EXPECT_EQ(a.arrivalTimeout(k), b.arrivalTimeout(k));
        EXPECT_EQ(a.arrivalStragglerDelay(r),
                  b.arrivalStragglerDelay(r));
        EXPECT_EQ(a.arrivalTimeout(r), b.arrivalTimeout(r));
        EXPECT_EQ(a.arrivalStragglerDelay(k),
                  a.arrivalStragglerDelay(k)); // revisit self
    }
}

TEST(FaultPlan, ArrivalQueriesRespectBoundsAndProbabilities)
{
    FaultPlanConfig cfg;
    cfg.seed = 21;
    cfg.stragglerProb = 0.5;
    cfg.stragglerMin = 7;
    cfg.stragglerMax = 11;
    cfg.arrivalTimeoutProb = 0.5;
    const FaultPlan plan(cfg);
    std::uint64_t stragglers = 0, timeouts = 0;
    constexpr std::uint64_t kN = 10000;
    for (std::uint64_t k = 0; k < kN; ++k) {
        const auto d = plan.arrivalStragglerDelay(k);
        if (d != 0) {
            ++stragglers;
            EXPECT_GE(d, cfg.stragglerMin);
            EXPECT_LE(d, cfg.stragglerMax);
        }
        timeouts += plan.arrivalTimeout(k) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(stragglers) / kN, 0.5, 0.05);
    EXPECT_NEAR(static_cast<double>(timeouts) / kN, 0.5, 0.05);
}

TEST(FaultPlan, ArrivalScheduleMatchesPerIndexQueries)
{
    FaultPlanConfig cfg;
    cfg.seed = 8;
    cfg.stragglerProb = 0.3;
    cfg.stragglerMin = 2;
    cfg.stragglerMax = 6;
    cfg.arrivalTimeoutProb = 0.2;
    const FaultPlan plan(cfg);
    const auto sched = plan.arrivalSchedule(2000);
    const FaultPlan twin(cfg);
    EXPECT_EQ(sched, twin.arrivalSchedule(2000));
    for (const auto &ev : sched) {
        if (ev.kind == FaultKind::StragglerDelay) {
            EXPECT_EQ(ev.magnitude, plan.arrivalStragglerDelay(ev.at));
        } else {
            ASSERT_EQ(ev.kind, FaultKind::ArrivalTimeout);
            EXPECT_TRUE(plan.arrivalTimeout(ev.at));
        }
    }
}

TEST(FaultPlan, ArrivalStreamIsDecorrelatedFromParticipantStream)
{
    // The arrival-indexed queries must draw from their own stream:
    // arrival k and (participant k, phase 0) sharing raw bits would
    // couple open-system faults to episode faults under one seed.
    FaultPlanConfig cfg;
    cfg.seed = 33;
    cfg.stragglerProb = 0.5;
    cfg.stragglerMin = 1;
    cfg.stragglerMax = 1000;
    const FaultPlan plan(cfg);
    std::uint64_t agree = 0;
    for (std::uint64_t k = 0; k < 200; ++k) {
        const auto arrival = plan.arrivalStragglerDelay(k);
        const auto participant = plan.stragglerDelay(
            static_cast<std::uint32_t>(k), 0);
        agree += arrival == participant ? 1 : 0;
    }
    // Identical streams would agree on all 200; independent ones on
    // roughly the hit/miss coincidence rate.
    EXPECT_LT(agree, 150u);
}
