/**
 * @file
 * P² streaming-quantile tests: exact below five samples, accurate on
 * known distributions, and consistent with the exact nearest-rank
 * answer of IntHistogram::percentile on replayed integer streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/histogram.hpp"
#include "support/p2_quantile.hpp"
#include "support/rng.hpp"

using absync::support::IntHistogram;
using absync::support::P2Quantile;
using absync::support::Rng;

TEST(P2Quantile, EmptyIsZero)
{
    const P2Quantile q(0.9);
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
    EXPECT_DOUBLE_EQ(q.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(q.maximum(), 0.0);
}

TEST(P2Quantile, ExactNearestRankBelowFiveSamples)
{
    P2Quantile p50(0.5);
    p50.add(30.0);
    p50.add(10.0);
    EXPECT_DOUBLE_EQ(p50.value(), 10.0); // rank ceil(0.5*2)=1
    p50.add(20.0);
    EXPECT_DOUBLE_EQ(p50.value(), 20.0); // rank ceil(0.5*3)=2
    EXPECT_DOUBLE_EQ(p50.minimum(), 10.0);
    EXPECT_DOUBLE_EQ(p50.maximum(), 30.0);

    P2Quantile p99(0.99);
    for (double x : {5.0, 1.0, 4.0, 2.0})
        p99.add(x);
    EXPECT_DOUBLE_EQ(p99.value(), 5.0); // rank ceil(.99*4)=4
}

TEST(P2Quantile, TracksMinAndMaxExactly)
{
    P2Quantile q(0.5);
    Rng rng(42);
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0 - 50.0;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        q.add(x);
    }
    EXPECT_EQ(q.count(), 1000u);
    EXPECT_DOUBLE_EQ(q.minimum(), lo);
    EXPECT_DOUBLE_EQ(q.maximum(), hi);
}

TEST(P2Quantile, UniformStreamConvergesToQuantile)
{
    P2Quantile p50(0.5), p90(0.9), p99(0.99);
    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        const double x = rng.nextDouble();
        p50.add(x);
        p90.add(x);
        p99.add(x);
    }
    EXPECT_NEAR(p50.value(), 0.50, 0.01);
    EXPECT_NEAR(p90.value(), 0.90, 0.01);
    EXPECT_NEAR(p99.value(), 0.99, 0.005);
    // Estimates of nested quantiles stay ordered.
    EXPECT_LE(p50.value(), p90.value());
    EXPECT_LE(p90.value(), p99.value());
}

TEST(P2Quantile, AgreesWithHistogramOnIntegerStream)
{
    // Replay one integer-valued stream (a body of short delays plus a
    // long heavy tail, the open-system delay shape) into both the
    // exact nearest-rank histogram and the O(1) P² estimators; the
    // streaming answers must land near the exact ones relative to the
    // distribution's scale.
    IntHistogram exact;
    P2Quantile p50(0.5), p90(0.9), p99(0.99);
    Rng rng(123);
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t x = rng.bernoulli(0.9)
                                    ? rng.uniformInt(1, 1000)
                                    : rng.uniformInt(1000, 50000);
        exact.add(x);
        p50.add(static_cast<double>(x));
        p90.add(static_cast<double>(x));
        p99.add(static_cast<double>(x));
    }
    const auto e50 = static_cast<double>(exact.percentile(0.50));
    const auto e90 = static_cast<double>(exact.percentile(0.90));
    const auto e99 = static_cast<double>(exact.percentile(0.99));
    EXPECT_NEAR(p50.value(), e50, 0.15 * e50);
    EXPECT_NEAR(p90.value(), e90, 0.15 * e90);
    EXPECT_NEAR(p99.value(), e99, 0.15 * e99);
}

TEST(P2Quantile, ClearResetsButKeepsTarget)
{
    P2Quantile q(0.9);
    for (int i = 0; i < 100; ++i)
        q.add(static_cast<double>(i));
    ASSERT_GT(q.value(), 0.0);
    q.clear();
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
    EXPECT_DOUBLE_EQ(q.quantile(), 0.9);
    q.add(3.0);
    EXPECT_DOUBLE_EQ(q.value(), 3.0);
}

TEST(P2Quantile, ConstantStreamIsThatConstant)
{
    P2Quantile q(0.99);
    for (int i = 0; i < 10000; ++i)
        q.add(42.0);
    EXPECT_DOUBLE_EQ(q.value(), 42.0);
    EXPECT_DOUBLE_EQ(q.minimum(), 42.0);
    EXPECT_DOUBLE_EQ(q.maximum(), 42.0);
}
