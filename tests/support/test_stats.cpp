/** @file Unit tests for support::RunningStats. */

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"
#include "support/stats.hpp"

using absync::support::Rng;
using absync::support::RunningStats;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.minimum(), 5.0);
    EXPECT_DOUBLE_EQ(s.maximum(), 5.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(s.maximum(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 1.0);
}

TEST(RunningStats, CvIsRelativeStddev)
{
    RunningStats s;
    for (double x : {10.0, 10.0, 10.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
    s.add(14.0);
    EXPECT_GT(s.cv(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    Rng rng(77);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.minimum(), all.minimum());
    EXPECT_DOUBLE_EQ(a.maximum(), all.maximum());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    const double mean = a.mean();
    a.merge(b); // no-op
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    b.merge(a); // copy
    EXPECT_DOUBLE_EQ(b.mean(), mean);
    EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, LargeStreamStable)
{
    // Numerical stability: large offset plus small noise.
    RunningStats s;
    Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        s.add(1e9 + rng.nextDouble());
    EXPECT_NEAR(s.mean(), 1e9 + 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(RunningStats, Ci95Behaviour)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
    // Constant samples: zero-width interval.
    for (int i = 0; i < 50; ++i)
        s.add(1.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
    // Spread samples: interval shrinks as n grows.
    RunningStats a, b;
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        a.add(rng.nextDouble());
    for (int i = 0; i < 10000; ++i)
        b.add(rng.nextDouble());
    EXPECT_GT(a.ci95(), b.ci95());
    EXPECT_NEAR(b.mean(), 0.5, b.ci95() * 3);
}
