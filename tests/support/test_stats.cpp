/** @file Unit tests for support::RunningStats. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "support/rng.hpp"
#include "support/stats.hpp"

using absync::support::Rng;
using absync::support::RunningStats;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.minimum(), 5.0);
    EXPECT_DOUBLE_EQ(s.maximum(), 5.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(s.maximum(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 1.0);
}

TEST(RunningStats, CvIsRelativeStddev)
{
    RunningStats s;
    for (double x : {10.0, 10.0, 10.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
    s.add(14.0);
    EXPECT_GT(s.cv(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    Rng rng(77);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.minimum(), all.minimum());
    EXPECT_DOUBLE_EQ(a.maximum(), all.maximum());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    const double mean = a.mean();
    a.merge(b); // no-op
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    b.merge(a); // copy
    EXPECT_DOUBLE_EQ(b.mean(), mean);
    EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, LargeStreamStable)
{
    // Numerical stability: large offset plus small noise.
    RunningStats s;
    Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        s.add(1e9 + rng.nextDouble());
    EXPECT_NEAR(s.mean(), 1e9 + 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(RunningStats, Ci95Behaviour)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
    // Constant samples: zero-width interval.
    for (int i = 0; i < 50; ++i)
        s.add(1.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
    // Spread samples: interval shrinks as n grows.
    RunningStats a, b;
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        a.add(rng.nextDouble());
    for (int i = 0; i < 10000; ++i)
        b.add(rng.nextDouble());
    EXPECT_GT(a.ci95(), b.ci95());
    EXPECT_NEAR(b.mean(), 0.5, b.ci95() * 3);
}

TEST(RunningStats, CompensationMakesIdenticalValuesExact)
{
    // The soak regression: mean of n identical values must be exact
    // for ANY n.  Uncompensated Welford drifts because each
    // delta/n correction term is rounded against a sum many orders
    // of magnitude larger; the Neumaier terms recover those bits.
    RunningStats s;
    const double v = 1.0e9 + 1.0 / 3.0; // not representable exactly
    for (int i = 0; i < 2000000; ++i)
        s.add(v);
    EXPECT_EQ(s.mean(), v); // bitwise, not NEAR
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.minimum(), v);
    EXPECT_EQ(s.maximum(), v);
}

TEST(RunningStats, LargeOffsetAlternatingStreamKeepsTightMean)
{
    // Alternating 1e9 / 1e9+1: true mean is 1e9 + 0.5 and true
    // population variance is exactly 0.25.  The low-order bit being
    // accumulated sits ~2^30 below the running mean, which is where
    // plain Welford loses precision over long streams.
    RunningStats s;
    for (int i = 0; i < 4000000; ++i)
        s.add(1.0e9 + static_cast<double>(i & 1));
    EXPECT_NEAR(s.mean(), 1.0e9 + 0.5, 1e-6);
    EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(RunningStats, MergeMatchesSerialUnderLargeOffset)
{
    // Parallel-fold contract at soak scale: splitting a large-offset
    // stream into shards and merging must agree with the serial
    // accumulation to near representation precision.
    RunningStats serial, sa, sb, sc;
    Rng rng(31);
    for (int i = 0; i < 300000; ++i) {
        const double x = 1.0e9 + rng.nextDouble();
        serial.add(x);
        (i % 3 == 0 ? sa : i % 3 == 1 ? sb : sc).add(x);
    }
    RunningStats merged = sa;
    merged.merge(sb);
    merged.merge(sc);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-6);
    EXPECT_NEAR(merged.variance(), serial.variance(), 1e-4);
    EXPECT_EQ(merged.minimum(), serial.minimum());
    EXPECT_EQ(merged.maximum(), serial.maximum());
}

TEST(RunningStats, CountIsSixtyFourBit)
{
    // Multi-billion-sample streams overflow a 32-bit counter; the
    // accumulator must count in 64 bits.
    static_assert(
        std::is_same_v<decltype(std::declval<const RunningStats &>()
                                    .count()),
                       std::uint64_t>,
        "RunningStats::count must be 64-bit for soak streams");
    SUCCEED();
}
