/**
 * @file
 * support::ThreadPool contract tests.
 *
 * The pool exists for one purpose — the deterministic parallel
 * runMany in the episode engines — so the contract under test is
 * narrow: submitted work runs exactly once, async() futures deliver
 * results and propagate exceptions, and the destructor is a barrier
 * that drains everything already queued.  The TSan CI job builds this
 * binary to shake out data races in the queue itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace
{

using absync::support::ThreadPool;

TEST(ThreadPool, SizeIsAtLeastOne)
{
    ThreadPool one(1);
    EXPECT_EQ(one.size(), 1u);
    ThreadPool clamped(0); // degenerate request still gets a worker
    EXPECT_EQ(clamped.size(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(ThreadPool::resolveJobs(1), 1u);
    EXPECT_EQ(ThreadPool::resolveJobs(7), 7u);
    // 0 = "use the hardware"; must still be a usable worker count.
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
}

TEST(ThreadPool, DestructorDrainsSubmittedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran] { ++ran; });
        // No waiting here: destruction must act as the barrier.
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, AsyncDeliversResults)
{
    ThreadPool pool(4);
    std::vector<std::future<std::uint64_t>> futs;
    futs.reserve(64);
    for (std::uint64_t i = 0; i < 64; ++i)
        futs.push_back(pool.async([i] { return i * i; }));
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, AsyncPropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.async([] { return 7; });
    auto bad = pool.async(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ManyProducersOneQueue)
{
    // Hammer the queue from several submitting threads at once; the
    // interesting assertions are TSan's, not the count.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        {
            ThreadPool producers(4);
            for (int p = 0; p < 4; ++p)
                producers.submit([&pool, &ran] {
                    for (int i = 0; i < 250; ++i)
                        pool.submit([&ran] { ++ran; });
                });
        } // producers drained: all 1000 submissions are queued
    }     // pool drained: all 1000 increments ran
    EXPECT_EQ(ran.load(), 1000);
}

} // namespace
