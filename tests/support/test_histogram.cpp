/** @file Unit tests for support histograms. */

#include <gtest/gtest.h>

#include "support/histogram.hpp"

using absync::support::BinnedHistogram;
using absync::support::IntHistogram;

TEST(IntHistogram, EmptyBehaviour)
{
    IntHistogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(3), 0u);
    EXPECT_EQ(h.fraction(3), 0.0);
    EXPECT_EQ(h.cumulativeFraction(10), 0.0);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(IntHistogram, CountsAndFractions)
{
    IntHistogram h;
    h.add(1);
    h.add(1);
    h.add(2);
    h.add(5);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_EQ(h.maxValue(), 5u);
}

TEST(IntHistogram, WeightedAdd)
{
    IntHistogram h;
    h.add(4, 10);
    h.add(4, 5);
    EXPECT_EQ(h.count(4), 15u);
    EXPECT_EQ(h.total(), 15u);
}

TEST(IntHistogram, CumulativeFraction)
{
    IntHistogram h;
    for (std::uint64_t v = 1; v <= 4; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(2), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(4), 1.0);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(100), 1.0);
}

TEST(IntHistogram, PercentileEmptyIsZero)
{
    const IntHistogram h;
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(IntHistogram, PercentileSingleSample)
{
    IntHistogram h;
    h.add(42);
    // Every percentile of a one-sample population is that sample.
    EXPECT_EQ(h.percentile(0.0), 42u);
    EXPECT_EQ(h.percentile(0.5), 42u);
    EXPECT_EQ(h.percentile(0.99), 42u);
    EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(IntHistogram, PercentileAllEqualSamples)
{
    IntHistogram h;
    h.add(7, 1000);
    EXPECT_EQ(h.percentile(0.01), 7u);
    EXPECT_EQ(h.percentile(0.5), 7u);
    EXPECT_EQ(h.percentile(0.999), 7u);
    EXPECT_EQ(h.percentile(1.0), 7u);
}

TEST(IntHistogram, PercentileNearestRank)
{
    IntHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    // Nearest-rank over 1..100: pXX is the value at rank ceil(p*100).
    EXPECT_EQ(h.percentile(0.50), 50u);
    EXPECT_EQ(h.percentile(0.90), 90u);
    EXPECT_EQ(h.percentile(0.99), 99u);
    EXPECT_EQ(h.percentile(0.991), 100u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(IntHistogram, PercentileSkewedMass)
{
    IntHistogram h;
    h.add(1, 99);
    h.add(1000, 1);
    // 99% of the mass sits at 1; only the very tail sees 1000.
    EXPECT_EQ(h.percentile(0.5), 1u);
    EXPECT_EQ(h.percentile(0.99), 1u);
    EXPECT_EQ(h.percentile(0.995), 1000u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(IntHistogram, PercentileOutOfRangeArgumentsClamp)
{
    IntHistogram h;
    h.add(3);
    h.add(9);
    EXPECT_EQ(h.percentile(-0.5), 3u);
    EXPECT_EQ(h.percentile(1.5), 9u);
}

TEST(IntHistogram, ClearResets)
{
    IntHistogram h;
    h.add(1);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(IntHistogram, AsciiChartMentionsCounts)
{
    IntHistogram h;
    h.add(0, 3);
    h.add(2, 1);
    const std::string chart = h.asciiChart(10);
    EXPECT_NE(chart.find('#'), std::string::npos);
    EXPECT_NE(chart.find('3'), std::string::npos);
}

TEST(BinnedHistogram, BinAssignment)
{
    BinnedHistogram h(0.0, 10.0, 5);
    h.add(0.5);  // bin 0
    h.add(9.5);  // bin 4
    h.add(5.0);  // bin 2
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(BinnedHistogram, OutOfRangeClamped)
{
    BinnedHistogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(1e9);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(BinnedHistogram, BinCenters)
{
    BinnedHistogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(BinnedHistogram, Fractions)
{
    BinnedHistogram h(0.0, 4.0, 4);
    h.add(0.5, 3);
    h.add(3.5, 1);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.binFraction(3), 0.25);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.0);
}

TEST(IntHistogram, AsciiChartRendersEmptyTrailingBuckets)
{
    IntHistogram h;
    h.add(0, 4);
    // up_to beyond maxValue: buckets 1..3 exist in the chart even
    // though they are empty (Figure 1 renders the full x-axis).
    const std::string chart = h.asciiChart(20, 3);
    EXPECT_NE(chart.find('0'), std::string::npos);
    EXPECT_NE(chart.find('3'), std::string::npos);
}

TEST(IntHistogram, AsciiChartOnEmptyHistogramIsSafe)
{
    const IntHistogram h;
    const std::string chart = h.asciiChart();
    // Must not divide by the zero total; any (possibly empty) string
    // without a crash is acceptable, but bucket 0 should render.
    EXPECT_EQ(h.total(), 0u);
    SUCCEED() << chart;
}

TEST(BinnedHistogram, EmptyHistogramFractionsAndChart)
{
    BinnedHistogram h(0.0, 1.0, 5);
    EXPECT_EQ(h.total(), 0u);
    for (std::size_t i = 0; i < h.bins(); ++i)
        EXPECT_DOUBLE_EQ(h.binFraction(i), 0.0);
    const std::string chart = h.asciiChart();
    EXPECT_FALSE(chart.empty());
}

TEST(BinnedHistogram, SingleBinSwallowsEverything)
{
    BinnedHistogram h(0.0, 10.0, 1);
    h.add(-100.0); // clamped up
    h.add(5.0);
    h.add(1e9); // clamped down
    EXPECT_EQ(h.bins(), 1u);
    EXPECT_EQ(h.binCount(0), 3u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
}

TEST(BinnedHistogram, ExactBoundariesLandInEdgeBins)
{
    BinnedHistogram h(0.0, 10.0, 5);
    h.add(0.0);  // inclusive lower edge: first bin
    h.add(10.0); // exclusive upper edge: clamped into last bin
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(IntHistogram, CountsSaturateInsteadOfWrapping)
{
    // Multi-billion-sample soak streams (or a caller passing a huge
    // weight) must pin at UINT64_MAX, never wrap to a tiny count that
    // would corrupt percentiles and fractions.
    IntHistogram h;
    h.add(7, UINT64_MAX);
    h.add(7, UINT64_MAX);
    EXPECT_EQ(h.count(7), UINT64_MAX);
    EXPECT_EQ(h.total(), UINT64_MAX);
    h.add(7); // weight 1 on a pinned count stays pinned
    EXPECT_EQ(h.count(7), UINT64_MAX);

    // The total saturates independently of any one bucket.
    IntHistogram g;
    g.add(1, UINT64_MAX - 5);
    g.add(2, 100);
    EXPECT_EQ(g.count(1), UINT64_MAX - 5);
    EXPECT_EQ(g.count(2), 100u);
    EXPECT_EQ(g.total(), UINT64_MAX);
    // Percentiles remain well-defined on a saturated total.
    EXPECT_EQ(g.percentile(0.5), 1u);
}

TEST(BinnedHistogram, CountsSaturateInsteadOfWrapping)
{
    BinnedHistogram h(0.0, 10.0, 2);
    h.add(1.0, UINT64_MAX);
    h.add(1.0, 10);
    h.add(9.0, 10);
    EXPECT_EQ(h.binCount(0), UINT64_MAX);
    EXPECT_EQ(h.binCount(1), 10u);
    EXPECT_EQ(h.total(), UINT64_MAX);
}
