/** @file Unit tests for the CLI option parser. */

#include <gtest/gtest.h>

#include <array>

#include "support/options.hpp"

using absync::support::Options;

namespace
{

Options
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    std::vector<char *> argv;
    for (auto *a : args)
        argv.push_back(const_cast<char *>(a));
    return Options(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Options, SpaceSeparatedValue)
{
    auto o = parse({"--n", "64"});
    EXPECT_TRUE(o.has("n"));
    EXPECT_EQ(o.getInt("n", 0), 64);
}

TEST(Options, EqualsValue)
{
    auto o = parse({"--window=1000"});
    EXPECT_EQ(o.getInt("window", 0), 1000);
}

TEST(Options, DefaultsWhenAbsent)
{
    auto o = parse({});
    EXPECT_FALSE(o.has("n"));
    EXPECT_EQ(o.getInt("n", 42), 42);
    EXPECT_EQ(o.get("name", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(o.getDouble("x", 1.5), 1.5);
}

TEST(Options, BooleanFlag)
{
    auto o = parse({"--verbose"});
    EXPECT_TRUE(o.getBool("verbose"));
    EXPECT_FALSE(o.getBool("quiet"));
}

TEST(Options, BooleanExplicitValues)
{
    auto o = parse({"--a=true", "--b=false", "--c=1", "--d=0"});
    EXPECT_TRUE(o.getBool("a"));
    EXPECT_FALSE(o.getBool("b"));
    EXPECT_TRUE(o.getBool("c"));
    EXPECT_FALSE(o.getBool("d"));
}

TEST(Options, DoubleValue)
{
    auto o = parse({"--load", "0.35"});
    EXPECT_DOUBLE_EQ(o.getDouble("load", 0), 0.35);
}

TEST(Options, IntList)
{
    auto o = parse({"--sizes=2,4,8,16"});
    const auto v = o.getIntList("sizes", {});
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 2);
    EXPECT_EQ(v[3], 16);
}

TEST(Options, IntListDefault)
{
    auto o = parse({});
    const auto v = o.getIntList("sizes", {1, 2});
    ASSERT_EQ(v.size(), 2u);
}

TEST(Options, Positional)
{
    auto o = parse({"file1", "--n", "3", "file2"});
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "file1");
    EXPECT_EQ(o.positional()[1], "file2");
}

TEST(Options, NegativeNumberAsValue)
{
    auto o = parse({"--delta=-5"});
    EXPECT_EQ(o.getInt("delta", 0), -5);
}

namespace
{

void
buildWithUnknownOption()
{
    const char *argv[] = {"prog", "--oops", "1"};
    absync::support::Options o(3, const_cast<char **>(argv),
                               {"fine"});
    (void)o;
}

void
readMalformedInt()
{
    const char *argv[] = {"prog", "--n", "abc"};
    absync::support::Options o(3, const_cast<char **>(argv));
    (void)o.getInt("n", 0);
}

} // namespace

TEST(Options, UnknownOptionIsFatalWhenRestricted)
{
    EXPECT_EXIT(buildWithUnknownOption(),
                ::testing::ExitedWithCode(2), "unknown option");
}

TEST(Options, MalformedIntIsFatal)
{
    EXPECT_EXIT(readMalformedInt(), ::testing::ExitedWithCode(2),
                "expects an integer");
}
