/** @file Unit tests for the Omega-network simulator. */

#include <gtest/gtest.h>

#include "sim/multistage.hpp"
#include "support/fault.hpp"

using absync::sim::MultistageConfig;
using absync::sim::MultistageNetwork;
using absync::sim::MultistageStats;
using absync::sim::NetBackoff;
using absync::sim::netBackoffFromString;
using absync::sim::netBackoffName;

namespace
{

MultistageStats
runWith(NetBackoff s, double load, double hotspot = 0.0,
        std::uint32_t procs = 64, std::uint64_t cycles = 20000)
{
    MultistageConfig cfg;
    cfg.processors = procs;
    cfg.strategy = s;
    cfg.offeredLoad = load;
    cfg.hotspotFraction = hotspot;
    cfg.cycles = cycles;
    cfg.seed = 12345;
    return MultistageNetwork(cfg).run();
}

} // namespace

TEST(Multistage, LightLoadDeliversRequests)
{
    const auto st = runWith(NetBackoff::Immediate, 0.02);
    EXPECT_GT(st.completed, 1000u);
    EXPECT_GE(st.attemptsPerRequest, 1.0);
    // At light uniform load almost everything should go through
    // with few attempts.
    EXPECT_LT(st.attemptsPerRequest, 2.0);
}

TEST(Multistage, ThroughputBoundedByServiceTime)
{
    // Each module serves one circuit per serviceCycles, so per-proc
    // throughput can never exceed 1/serviceCycles.
    const auto st = runWith(NetBackoff::Immediate, 1.0);
    EXPECT_LE(st.throughput, 1.0 / 4.0 + 0.01);
}

TEST(Multistage, CollisionsRiseWithLoad)
{
    const auto lo = runWith(NetBackoff::Immediate, 0.02);
    const auto hi = runWith(NetBackoff::Immediate, 0.8);
    const double lo_rate = static_cast<double>(lo.collisions) /
                           static_cast<double>(lo.attempts);
    const double hi_rate = static_cast<double>(hi.collisions) /
                           static_cast<double>(hi.attempts);
    EXPECT_GT(hi_rate, lo_rate);
}

TEST(Multistage, BackoffCutsAttemptsUnderCongestion)
{
    // At high load, exponential backoff must reduce setup attempts per
    // completed request versus immediate retry (the paper's premise).
    const auto imm = runWith(NetBackoff::Immediate, 0.8);
    const auto exp = runWith(NetBackoff::Exponential, 0.8);
    EXPECT_LT(exp.attemptsPerRequest, imm.attemptsPerRequest);
}

TEST(Multistage, HotspotDegradesThroughput)
{
    const auto uni = runWith(NetBackoff::Immediate, 0.3, 0.0);
    const auto hot = runWith(NetBackoff::Immediate, 0.3, 0.5);
    EXPECT_LT(hot.throughput, uni.throughput);
}

TEST(Multistage, QueueFeedbackHelpsHotspotAttempts)
{
    const auto imm = runWith(NetBackoff::Immediate, 0.5, 0.5);
    const auto fb = runWith(NetBackoff::QueueFeedback, 0.5, 0.5);
    EXPECT_LT(fb.attemptsPerRequest, imm.attemptsPerRequest);
}

TEST(Multistage, CollisionDepthWithinStageCount)
{
    const auto st = runWith(NetBackoff::Immediate, 0.8);
    EXPECT_GE(st.avgCollisionDepth, 1.0);
    EXPECT_LE(st.avgCollisionDepth, 6.0); // log2(64) stages
}

TEST(Multistage, DeterministicForSeed)
{
    MultistageConfig cfg;
    cfg.cycles = 5000;
    cfg.seed = 99;
    const auto a = MultistageNetwork(cfg).run();
    const auto b = MultistageNetwork(cfg).run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
}

TEST(Multistage, SmallNetworkWorks)
{
    const auto st = runWith(NetBackoff::Immediate, 0.3, 0.0, 4, 5000);
    EXPECT_GT(st.completed, 100u);
}

TEST(Multistage, StrategyNamesRoundTrip)
{
    for (NetBackoff s :
         {NetBackoff::Immediate, NetBackoff::DepthProportional,
          NetBackoff::InverseDepth, NetBackoff::ConstantRtt,
          NetBackoff::Exponential, NetBackoff::QueueFeedback}) {
        EXPECT_FALSE(netBackoffName(s).empty());
    }
    EXPECT_EQ(netBackoffFromString("immediate"), NetBackoff::Immediate);
    EXPECT_EQ(netBackoffFromString("depth"),
              NetBackoff::DepthProportional);
    EXPECT_EQ(netBackoffFromString("inverse-depth"),
              NetBackoff::InverseDepth);
    EXPECT_EQ(netBackoffFromString("rtt"), NetBackoff::ConstantRtt);
    EXPECT_EQ(netBackoffFromString("exp"), NetBackoff::Exponential);
    EXPECT_EQ(netBackoffFromString("feedback"),
              NetBackoff::QueueFeedback);
}

TEST(Multistage, PollersDegradeBackgroundLatency)
{
    // Spinning pollers tie up partial circuits toward module 0 and
    // slow the background traffic (tree saturation, Sec 2.2).
    MultistageConfig base;
    base.processors = 64;
    base.offeredLoad = 0.3;
    base.cycles = 15000;
    base.seed = 21;
    const auto clean = MultistageNetwork(base).run();

    MultistageConfig hot = base;
    hot.hotPollers = 32;
    const auto polluted = MultistageNetwork(hot).run();
    EXPECT_GT(polluted.bgLatency, clean.bgLatency);
}

TEST(Multistage, PollPacingRestoresBackground)
{
    MultistageConfig cfg;
    cfg.processors = 64;
    cfg.offeredLoad = 0.3;
    cfg.cycles = 15000;
    cfg.seed = 23;
    cfg.hotPollers = 16;
    cfg.hotPollInterval = 0;
    const auto spinning = MultistageNetwork(cfg).run();
    cfg.hotPollInterval = 256;
    const auto paced = MultistageNetwork(cfg).run();
    EXPECT_LT(paced.bgLatency, spinning.bgLatency);
    EXPECT_GE(paced.bgThroughput, spinning.bgThroughput);
}

TEST(Multistage, BackgroundStatsDisjointFromPollers)
{
    MultistageConfig cfg;
    cfg.processors = 16;
    cfg.offeredLoad = 0.1;
    cfg.cycles = 8000;
    cfg.seed = 29;
    cfg.hotPollers = 4;
    const auto st = MultistageNetwork(cfg).run();
    EXPECT_LT(st.bgCompleted, st.completed);
    EXPECT_GT(st.bgCompleted, 0u);
}

// ---------------------------------------------------------------------
// Fault injection (packet drops and delays via cfg.faults).

TEST(MultistageFaults, CertainDropsCompleteNothing)
{
    // dropProb=1 kills every otherwise-successful circuit at the last
    // stage; retries keep flowing, so attempts pile up but nothing
    // completes.
    absync::support::FaultPlanConfig fc;
    fc.seed = 19;
    fc.dropProb = 1.0;
    const absync::support::FaultPlan plan(fc);
    MultistageConfig cfg;
    cfg.processors = 16;
    cfg.offeredLoad = 0.2;
    cfg.cycles = 2000;
    cfg.seed = 19;
    cfg.faults = &plan;
    const auto st = MultistageNetwork(cfg).run();
    EXPECT_EQ(st.completed, 0u);
    EXPECT_GT(st.droppedPackets, 0u);
    EXPECT_GT(st.attempts, st.droppedPackets)
        << "drops retry like collisions";
}

TEST(MultistageFaults, DropsRaiseAttemptsPerRequest)
{
    auto run = [](const absync::support::FaultPlan *plan) {
        MultistageConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = 0.3;
        cfg.cycles = 20000;
        cfg.seed = 23;
        cfg.faults = plan;
        return MultistageNetwork(cfg).run();
    };
    absync::support::FaultPlanConfig fc;
    fc.seed = 23;
    fc.dropProb = 0.1;
    const absync::support::FaultPlan plan(fc);
    const auto clean = run(nullptr);
    const auto hurt = run(&plan);
    EXPECT_GT(hurt.droppedPackets, 0u);
    EXPECT_GT(hurt.attemptsPerRequest, clean.attemptsPerRequest);
    EXPECT_LE(hurt.throughput, clean.throughput);
}

TEST(MultistageFaults, DelaysStretchLatency)
{
    auto run = [](const absync::support::FaultPlan *plan) {
        MultistageConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = 0.2;
        cfg.cycles = 20000;
        cfg.seed = 29;
        cfg.faults = plan;
        return MultistageNetwork(cfg).run();
    };
    absync::support::FaultPlanConfig fc;
    fc.seed = 29;
    fc.delayProb = 0.5;
    fc.delayMin = 8;
    fc.delayMax = 32;
    const absync::support::FaultPlan plan(fc);
    const auto clean = run(nullptr);
    const auto hurt = run(&plan);
    EXPECT_GT(hurt.delayedPackets, 0u);
    EXPECT_GT(hurt.avgLatency, clean.avgLatency);
}

TEST(MultistageFaults, FaultedRunIsDeterministic)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 31;
    fc.dropProb = 0.05;
    fc.delayProb = 0.05;
    const absync::support::FaultPlan plan(fc);
    MultistageConfig cfg;
    cfg.processors = 32;
    cfg.offeredLoad = 0.3;
    cfg.cycles = 10000;
    cfg.seed = 31;
    cfg.faults = &plan;
    const auto a = MultistageNetwork(cfg).run();
    const auto b = MultistageNetwork(cfg).run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.droppedPackets, b.droppedPackets);
    EXPECT_EQ(a.delayedPackets, b.delayedPackets);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
}
