/** @file Unit tests for Patel's analytical MIN model. */

#include <gtest/gtest.h>

#include "sim/multistage.hpp"
#include "sim/patel_model.hpp"

using namespace absync::sim;

TEST(PatelModel, ZeroOfferedZeroDelivered)
{
    PatelNetwork net;
    EXPECT_DOUBLE_EQ(patelOutputRate(net, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(patelAcceptance(net, 0.0), 1.0);
}

TEST(PatelModel, SingleStageClosedForm)
{
    // One 2x2 stage: m1 = 1 - (1 - m0/2)^2.
    PatelNetwork net;
    net.stages = 1;
    const double m0 = 0.5;
    EXPECT_NEAR(patelOutputRate(net, m0),
                1.0 - (1.0 - m0 / 2.0) * (1.0 - m0 / 2.0), 1e-12);
}

TEST(PatelModel, MonotoneInOfferedRate)
{
    PatelNetwork net;
    net.stages = 6;
    double prev = 0.0;
    for (double m0 = 0.1; m0 <= 1.0; m0 += 0.1) {
        const double out = patelOutputRate(net, m0);
        EXPECT_GT(out, prev);
        prev = out;
    }
}

TEST(PatelModel, AcceptanceDegradesWithStagesAndLoad)
{
    PatelNetwork shallow;
    shallow.stages = 2;
    PatelNetwork deep;
    deep.stages = 10;
    EXPECT_GT(patelAcceptance(shallow, 0.5),
              patelAcceptance(deep, 0.5));
    EXPECT_GT(patelAcceptance(deep, 0.1), patelAcceptance(deep, 0.9));
}

TEST(PatelModel, BandwidthBoundedByOffered)
{
    for (double m0 : {0.1, 0.5, 1.0}) {
        const double bw = omegaBandwidth(64, m0);
        EXPECT_LE(bw, m0 + 1e-12);
        EXPECT_GT(bw, 0.0);
    }
}

TEST(PatelModel, AttemptsPerRequestAtLeastOne)
{
    PatelNetwork net;
    net.stages = 6;
    EXPECT_GE(patelAttemptsPerRequest(net, 0.3), 1.0);
    EXPECT_GT(patelAttemptsPerRequest(net, 0.9),
              patelAttemptsPerRequest(net, 0.1));
}

TEST(PatelModel, RoughlyTracksOmegaSimulatorAtUniformLoad)
{
    // The analytic model and the cycle simulator disagree in detail
    // (the simulator has persistent retries and service times), but
    // at light uniform load both should accept nearly everything,
    // and both should degrade together as load rises.
    const auto simAcceptance = [](double load) {
        MultistageConfig cfg;
        cfg.processors = 64;
        cfg.offeredLoad = load;
        cfg.serviceCycles = 1;
        cfg.cycles = 20000;
        cfg.seed = 31;
        const auto st = MultistageNetwork(cfg).run();
        return 1.0 / st.attemptsPerRequest;
    };
    const double sim_light = simAcceptance(0.05);
    const double model_light = patelAcceptance({2, 2, 6}, 0.05);
    EXPECT_NEAR(sim_light, model_light, 0.1);

    const double sim_heavy = simAcceptance(0.9);
    const double model_heavy = patelAcceptance({2, 2, 6}, 0.9);
    EXPECT_LT(model_heavy, 0.75);
    EXPECT_LT(sim_heavy, 0.75);
}
