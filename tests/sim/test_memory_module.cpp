/** @file Unit tests for the memory-module contention model. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/memory_module.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

using absync::sim::Arbitration;
using absync::sim::arbitrationFromString;
using absync::sim::MemoryModule;
using absync::sim::NO_GRANT;
using absync::support::Rng;

TEST(MemoryModule, NoRequestersNoGrant)
{
    MemoryModule m;
    Rng rng(1);
    EXPECT_EQ(m.arbitrate(rng), NO_GRANT);
    EXPECT_EQ(m.totalGrants(), 0u);
}

TEST(MemoryModule, SingleRequesterAlwaysWins)
{
    MemoryModule m;
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        m.request(7);
        EXPECT_EQ(m.arbitrate(rng), 7u);
    }
    EXPECT_EQ(m.totalGrants(), 100u);
    EXPECT_EQ(m.totalDenials(), 0u);
}

TEST(MemoryModule, ExactlyOneGrantPerCycle)
{
    MemoryModule m;
    Rng rng(2);
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (std::uint32_t id = 0; id < 8; ++id)
            m.request(id);
        const auto w = m.arbitrate(rng);
        EXPECT_NE(w, NO_GRANT);
        EXPECT_LT(w, 8u);
    }
    EXPECT_EQ(m.totalGrants(), 50u);
    EXPECT_EQ(m.totalDenials(), 50u * 7);
}

TEST(MemoryModule, RandomArbitrationIsFairInAggregate)
{
    MemoryModule m(Arbitration::Random);
    Rng rng(3);
    std::map<std::uint32_t, int> wins;
    const int cycles = 40000;
    for (int c = 0; c < cycles; ++c) {
        for (std::uint32_t id = 0; id < 4; ++id)
            m.request(id);
        ++wins[m.arbitrate(rng)];
    }
    for (std::uint32_t id = 0; id < 4; ++id)
        EXPECT_NEAR(wins[id], cycles / 4, cycles / 4 / 10);
}

TEST(MemoryModule, RandomGeometricWaitForOneOfN)
{
    // The property Model 1 relies on: a specific requester among N
    // persistent contenders needs ~N tries in expectation.
    MemoryModule m(Arbitration::Random);
    Rng rng(4);
    const std::uint32_t n = 16;
    double total_tries = 0;
    const int episodes = 2000;
    for (int e = 0; e < episodes; ++e) {
        int tries = 0;
        while (true) {
            for (std::uint32_t id = 0; id < n; ++id)
                m.request(id);
            ++tries;
            if (m.arbitrate(rng) == 0)
                break;
        }
        total_tries += tries;
    }
    EXPECT_NEAR(total_tries / episodes, n, n * 0.15);
}

TEST(MemoryModule, RoundRobinCyclesThroughRequesters)
{
    MemoryModule m(Arbitration::RoundRobin);
    Rng rng(5);
    std::vector<std::uint32_t> order;
    for (int c = 0; c < 8; ++c) {
        for (std::uint32_t id = 0; id < 4; ++id)
            m.request(id);
        order.push_back(m.arbitrate(rng));
    }
    // Every window of 4 grants must contain each requester once.
    for (int base = 0; base <= 4; base += 4) {
        std::vector<bool> seen(4, false);
        for (int i = 0; i < 4; ++i)
            seen[order[static_cast<std::size_t>(base + i)]] = true;
        for (bool s : seen)
            EXPECT_TRUE(s);
    }
}

TEST(MemoryModule, RoundRobinSkipsNonRequesters)
{
    MemoryModule m(Arbitration::RoundRobin);
    Rng rng(6);
    m.request(2);
    m.request(5);
    const auto w1 = m.arbitrate(rng);
    EXPECT_EQ(w1, 2u);
    m.request(2);
    m.request(5);
    EXPECT_EQ(m.arbitrate(rng), 5u);
}

TEST(MemoryModule, FifoGrantsLongestWaiter)
{
    MemoryModule m(Arbitration::Fifo);
    Rng rng(7);
    // id 3 requests alone first and loses nothing; next cycle id 1
    // joins; id 3 must win (waiting longer), then id 1.
    m.request(3);
    EXPECT_EQ(m.arbitrate(rng), 3u);
    m.request(1);
    m.request(2);
    const auto w = m.arbitrate(rng);
    // Both arrived the same cycle: tie broken by smaller id.
    EXPECT_EQ(w, 1u);
    m.request(2);
    m.request(0); // newcomer
    EXPECT_EQ(m.arbitrate(rng), 2u) << "2 has waited since earlier";
}

TEST(MemoryModule, FifoBackoffLosesPosition)
{
    MemoryModule m(Arbitration::Fifo);
    Rng rng(8);
    // Cycle 0: 4 and 5 wait; 4 wins (tie -> smaller id).
    m.request(4);
    m.request(5);
    EXPECT_EQ(m.arbitrate(rng), 4u);
    // Cycle 1: 5 sits out (backed off); 6 requests and wins.
    m.request(6);
    EXPECT_EQ(m.arbitrate(rng), 6u);
    // Cycle 2: 5 returns, 7 is new; but 5 re-entered at the tail at
    // the same time 7 arrived -> tie broken by id: 5 wins.
    m.request(5);
    m.request(7);
    EXPECT_EQ(m.arbitrate(rng), 5u);
}

TEST(MemoryModule, ResetClearsState)
{
    MemoryModule m;
    Rng rng(9);
    m.request(1);
    m.arbitrate(rng);
    m.reset();
    EXPECT_EQ(m.totalGrants(), 0u);
    EXPECT_EQ(m.totalDenials(), 0u);
    EXPECT_EQ(m.pending(), 0u);
}

TEST(MemoryModule, ArbitrationFromString)
{
    EXPECT_EQ(arbitrationFromString("random"), Arbitration::Random);
    EXPECT_EQ(arbitrationFromString("rr"), Arbitration::RoundRobin);
    EXPECT_EQ(arbitrationFromString("round-robin"),
              Arbitration::RoundRobin);
    EXPECT_EQ(arbitrationFromString("fifo"), Arbitration::Fifo);
}

// ---------------------------------------------------------------------
// Fault injection (FaultPlan::moduleStalled via setFaults()).

TEST(MemoryModule, StalledModuleGrantsNothing)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 11;
    fc.stallProb = 1.0;
    const absync::support::FaultPlan plan(fc);
    MemoryModule m;
    m.setFaults(&plan, 0);
    Rng rng(11);
    for (int cycle = 0; cycle < 20; ++cycle) {
        m.request(1);
        m.request(2);
        EXPECT_EQ(m.arbitrate(rng), NO_GRANT);
    }
    EXPECT_EQ(m.totalGrants(), 0u);
    EXPECT_EQ(m.totalStallCycles(), 20u);
    EXPECT_EQ(m.totalDenials(), 40u) << "stall denies all requesters";
}

TEST(MemoryModule, StallScheduleIsPerModule)
{
    // Two modules with the same plan stall on different cycles: the
    // module id participates in the fault coordinates.
    absync::support::FaultPlanConfig fc;
    fc.seed = 13;
    fc.stallProb = 0.5;
    const absync::support::FaultPlan plan(fc);
    MemoryModule a;
    MemoryModule b;
    a.setFaults(&plan, 0);
    b.setFaults(&plan, 1);
    Rng rng(13);
    bool differs = false;
    for (int cycle = 0; cycle < 64 && !differs; ++cycle) {
        a.request(1);
        b.request(1);
        differs = (a.arbitrate(rng) == NO_GRANT) !=
                  (b.arbitrate(rng) == NO_GRANT);
    }
    EXPECT_TRUE(differs);
}

TEST(MemoryModule, ResetClearsStallState)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 17;
    fc.stallProb = 1.0;
    const absync::support::FaultPlan plan(fc);
    MemoryModule m;
    m.setFaults(&plan, 0);
    Rng rng(17);
    m.request(1);
    EXPECT_EQ(m.arbitrate(rng), NO_GRANT);
    m.reset();
    EXPECT_EQ(m.totalStallCycles(), 0u);
}
