/** @file Tests for the buffered Omega network and its tree
 *        saturation / feedback behaviour. */

#include <gtest/gtest.h>

#include "sim/buffered_multistage.hpp"
#include "support/fault.hpp"

using namespace absync::sim;

namespace
{

BufferedNetConfig
baseConfig()
{
    BufferedNetConfig cfg;
    cfg.processors = 64;
    cfg.offeredLoad = 0.2;
    cfg.cycles = 15000;
    cfg.seed = 7;
    return cfg;
}

} // namespace

TEST(BufferedNet, DeliversUnderLightLoad)
{
    auto cfg = baseConfig();
    cfg.offeredLoad = 0.05;
    const auto st = BufferedMultistageNetwork(cfg).run();
    EXPECT_GT(st.delivered, 1000u);
    // Light uniform load: latency near the pipeline depth (6).
    EXPECT_LT(st.bgLatency, 20.0);
    EXPECT_LT(st.avgQueueOccupancy, 0.2);
}

TEST(BufferedNet, DeterministicForSeed)
{
    const auto a = BufferedMultistageNetwork(baseConfig()).run();
    const auto b = BufferedMultistageNetwork(baseConfig()).run();
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_DOUBLE_EQ(a.bgLatency, b.bgLatency);
}

TEST(BufferedNet, ThroughputBoundedByModuleService)
{
    auto cfg = baseConfig();
    cfg.offeredLoad = 1.0;
    const auto st = BufferedMultistageNetwork(cfg).run();
    // Each module serves at most one packet per cycle.
    EXPECT_LE(st.delivered,
              cfg.cycles * cfg.processors + cfg.processors);
}

TEST(BufferedNet, HotSpotSaturatesTheTree)
{
    // The Pfister-Norton effect: pollers on module 0 fill the queues
    // on module 0's tree far beyond the network average, and the
    // *background* latency suffers.
    auto clean = baseConfig();
    const auto base = BufferedMultistageNetwork(clean).run();

    auto hot = baseConfig();
    hot.hotPollers = 16;
    const auto sat = BufferedMultistageNetwork(hot).run();

    EXPECT_GT(sat.hotTreeOccupancy, 3.0 * sat.avgQueueOccupancy)
        << "hot tree queues must be disproportionately full";
    EXPECT_GT(sat.hotTreeOccupancy, 0.5);
    EXPECT_GT(sat.bgLatency, 1.5 * base.bgLatency)
        << "background traffic must suffer from the hot spot";
}

TEST(BufferedNet, FeedbackRelievesSaturation)
{
    // Scott-Sohi: letting processors see the module queue length and
    // back off proportionally drains the tree.
    auto hot = baseConfig();
    hot.hotPollers = 16;
    const auto sat = BufferedMultistageNetwork(hot).run();

    auto fb = hot;
    fb.feedbackThreshold = 2;
    const auto relieved = BufferedMultistageNetwork(fb).run();

    EXPECT_LT(relieved.hotTreeOccupancy, sat.hotTreeOccupancy);
    EXPECT_LT(relieved.bgLatency, sat.bgLatency);
    EXPECT_GT(relieved.feedbackWaitCycles, 0u);
}

TEST(BufferedNet, PollPacingAlsoRelieves)
{
    auto hot = baseConfig();
    hot.hotPollers = 16;
    const auto sat = BufferedMultistageNetwork(hot).run();

    auto paced = hot;
    paced.hotPollInterval = 128;
    const auto relieved = BufferedMultistageNetwork(paced).run();
    EXPECT_LT(relieved.bgLatency, sat.bgLatency);
}

TEST(BufferedNet, InjectionFailuresAppearUnderOverload)
{
    auto cfg = baseConfig();
    cfg.offeredLoad = 1.0;
    cfg.hotspotFraction = 0.5;
    const auto st = BufferedMultistageNetwork(cfg).run();
    EXPECT_GT(st.injectionFailures, 0u);
}

TEST(BufferedNet, SmallNetworkWorks)
{
    auto cfg = baseConfig();
    cfg.processors = 4;
    cfg.cycles = 5000;
    const auto st = BufferedMultistageNetwork(cfg).run();
    EXPECT_GT(st.delivered, 100u);
}

TEST(BufferedNet, PacketConservation)
{
    // Every injected packet is either delivered or still queued when
    // the run ends — nothing is dropped or duplicated.
    for (double load : {0.05, 0.3, 1.0}) {
        auto cfg = baseConfig();
        cfg.offeredLoad = load;
        cfg.hotPollers = 8;
        const auto st = BufferedMultistageNetwork(cfg).run();
        EXPECT_EQ(st.injected, st.delivered + st.inFlightAtEnd)
            << "load " << load;
    }
}

// ---------------------------------------------------------------------
// Fault injection (packet drops and delays via cfg.faults).

TEST(BufferedNetFaults, CertainDropsDeliverNothing)
{
    // Store-and-forward injection is fire-and-forget: a dropped
    // packet is silent loss, not a retry.
    absync::support::FaultPlanConfig fc;
    fc.seed = 37;
    fc.dropProb = 1.0;
    const absync::support::FaultPlan plan(fc);
    auto cfg = baseConfig();
    cfg.faults = &plan;
    const auto st = BufferedMultistageNetwork(cfg).run();
    EXPECT_EQ(st.delivered, 0u);
    EXPECT_GT(st.droppedPackets, 0u);
}

TEST(BufferedNetFaults, PartialDropsLowerDelivery)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 41;
    fc.dropProb = 0.2;
    const absync::support::FaultPlan plan(fc);
    const auto clean = BufferedMultistageNetwork(baseConfig()).run();
    auto cfg = baseConfig();
    cfg.faults = &plan;
    const auto hurt = BufferedMultistageNetwork(cfg).run();
    EXPECT_GT(hurt.droppedPackets, 0u);
    EXPECT_LT(hurt.delivered, clean.delivered);
}

TEST(BufferedNetFaults, DelaysBackUpTheQueues)
{
    // Extra service at the module lengthens the very queues the
    // Scott-Sohi feedback strategies read.
    absync::support::FaultPlanConfig fc;
    fc.seed = 43;
    fc.delayProb = 0.5;
    fc.delayMin = 4;
    fc.delayMax = 16;
    const absync::support::FaultPlan plan(fc);
    auto cfg = baseConfig();
    cfg.offeredLoad = 0.3;
    const auto clean = BufferedMultistageNetwork(cfg).run();
    cfg.faults = &plan;
    const auto hurt = BufferedMultistageNetwork(cfg).run();
    EXPECT_GT(hurt.delayedPackets, 0u);
    EXPECT_GT(hurt.bgLatency, clean.bgLatency);
    EXPECT_GT(hurt.avgQueueOccupancy, clean.avgQueueOccupancy);
}

TEST(BufferedNetFaults, FaultedRunIsDeterministic)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 47;
    fc.dropProb = 0.1;
    fc.delayProb = 0.1;
    const absync::support::FaultPlan plan(fc);
    auto cfg = baseConfig();
    cfg.faults = &plan;
    const auto a = BufferedMultistageNetwork(cfg).run();
    const auto b = BufferedMultistageNetwork(cfg).run();
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.droppedPackets, b.droppedPackets);
    EXPECT_EQ(a.delayedPackets, b.delayedPackets);
}
