/** @file Simulator-versus-model oracle: BarrierSimulator episode
 *        statistics must track the Section 5.1 closed forms across a
 *        grid of (N, A) operating points, within the paper's reported
 *        error envelope (worst case 18.2%). */

#include <cstdint>

#include <gtest/gtest.h>

#include "core/backoff.hpp"
#include "core/barrier_sim.hpp"
#include "core/hierarchical_barrier_sim.hpp"
#include "core/models.hpp"

namespace
{

using absync::core::BackoffConfig;
using absync::core::BarrierConfig;
using absync::core::BarrierSimulator;
using absync::core::EpisodeSummary;
using absync::core::FlagBackoff;

EpisodeSummary
runGridPoint(std::uint32_t n, std::uint64_t a,
             const BackoffConfig &backoff, std::uint64_t seed)
{
    BarrierConfig cfg;
    cfg.processors = n;
    cfg.arrivalWindow = a;
    cfg.backoff = backoff;
    return BarrierSimulator(cfg).runMany(40, seed);
}

TEST(SimModelOracle, NoBackoffTracksMaxOfModelsAcrossGrid)
{
    // Section 6.1: max(Model 1, Model 2) fits the simulation in all
    // ranges.  Sweep dense, transitional, and sparse arrival windows
    // for two machine sizes and hold every point to a 20% envelope
    // (paper's own worst case against the simulator is 18.2%).
    constexpr double kTol = 0.20;
    std::uint64_t seed = 101;
    for (const std::uint32_t n : {16u, 64u}) {
        for (const std::uint64_t a :
             {std::uint64_t{0}, std::uint64_t{4} * n,
              std::uint64_t{100} * n}) {
            const EpisodeSummary s =
                runGridPoint(n, a, BackoffConfig{}, seed++);
            const double predicted = absync::core::modelAccesses(
                static_cast<double>(a), n);
            EXPECT_NEAR(s.accesses.mean(), predicted,
                        kTol * predicted)
                << "N=" << n << " A=" << a;
        }
    }
}

TEST(SimModelOracle, SimultaneousArrivalMatchesModel1)
{
    // A = 0 is Model 1's regime: 5N/2 accesses per processor.
    std::uint64_t seed = 211;
    for (const std::uint32_t n : {16u, 32u, 64u}) {
        const EpisodeSummary s =
            runGridPoint(n, 0, BackoffConfig{}, seed++);
        const double predicted = absync::core::model1Accesses(n);
        EXPECT_NEAR(s.accesses.mean(), predicted, 0.15 * predicted)
            << "N=" << n;
    }
}

TEST(SimModelOracle, SparseArrivalMatchesModel2)
{
    // A >> N is Model 2's regime: r/2 + 3N/2 with r = A(N-1)/(N+1).
    std::uint64_t seed = 307;
    for (const std::uint32_t n : {16u, 64u}) {
        const std::uint64_t a = std::uint64_t{100} * n;
        const EpisodeSummary s =
            runGridPoint(n, a, BackoffConfig{}, seed++);
        const double predicted = absync::core::model2Accesses(
            static_cast<double>(a), n);
        EXPECT_NEAR(s.accesses.mean(), predicted, 0.15 * predicted)
            << "N=" << n << " A=" << a;
        // The simulated arrival span must also match Eq. 1, or the
        // accesses agreement would be a coincidence.
        const double span = absync::core::expectedSpan(
            static_cast<double>(a), n);
        EXPECT_NEAR(s.span.mean(), span, 0.15 * span) << "N=" << n;
    }
}

TEST(SimModelOracle, VariableBackoffMatchesItsModel1Variant)
{
    // Backoff on the barrier variable saves N/2 of the 5N/2: the
    // simultaneous-arrival cost drops to ~2N (Section 5.1).
    std::uint64_t seed = 401;
    for (const std::uint32_t n : {16u, 64u}) {
        BackoffConfig backoff;
        backoff.onVariable = true;
        const EpisodeSummary s = runGridPoint(n, 0, backoff, seed++);
        const double predicted =
            absync::core::model1VariableBackoffAccesses(n);
        EXPECT_NEAR(s.accesses.mean(), predicted, 0.20 * predicted)
            << "N=" << n;
    }
}

TEST(SimModelOracle, ExponentialFlagBackoffMatchesItsModel2Variant)
{
    // Sparse arrivals with exponential flag backoff: the r/2 polling
    // term collapses to ~log_b(r/2), leaving log_b(r/2) + 3N/2.  The
    // closed form is an upper *envelope* — in the simulator the paced
    // polls also thin the 3N/2 endgame contention — so the oracle is
    // two-sided: the mean must fall below the envelope but can never
    // beat the irreducible log_b(r/2) poll schedule itself, and the
    // bulk of the plain-polling cost must be gone.
    std::uint64_t seed = 503;
    for (const std::uint32_t n : {16u, 64u}) {
        const std::uint64_t a = std::uint64_t{100} * n;
        BackoffConfig backoff;
        backoff.onFlag = FlagBackoff::Exponential;
        backoff.flagBase = 2;
        const EpisodeSummary s = runGridPoint(n, a, backoff, seed++);
        const double envelope =
            absync::core::model2ExponentialAccesses(
                static_cast<double>(a), n, 2.0);
        const double log_term = envelope - 1.5 * n;
        const double plain = absync::core::model2Accesses(
            static_cast<double>(a), n);
        EXPECT_LE(s.accesses.mean(), envelope)
            << "N=" << n << " A=" << a;
        EXPECT_GE(s.accesses.mean(), log_term)
            << "N=" << n << " A=" << a
            << ": fewer accesses than the backoff schedule's own "
               "poll count";
        EXPECT_LT(s.accesses.mean(), 0.5 * plain)
            << "exponential flag backoff failed to collapse the "
               "polling term at N="
            << n;
    }
}

TEST(SimModelOracle, QueueWakeupMatchesItsModel)
{
    // Third policy family (DESIGN.md §14): with a local-spin queue
    // the only network traffic is the enqueue F&A — the k-th FIFO
    // grant costs k attempts, (N+1)/2 on average — plus the waker's
    // N-1 handoff writes amortized over N processors.  No flag
    // polling term exists at all, so the flag module must be stone
    // cold, not merely quiet.
    std::uint64_t seed = 601;
    for (const std::uint32_t n : {16u, 32u, 64u}) {
        const EpisodeSummary s = runGridPoint(
            n, 0, BackoffConfig::queue(), seed++);
        const double predicted =
            absync::core::modelQueueAccesses(n);
        EXPECT_NEAR(s.accesses.mean(), predicted, 0.20 * predicted)
            << "N=" << n;
        EXPECT_EQ(s.flagTraffic.mean(), 0.0)
            << "queue mode touched the flag module at N=" << n;
        // And the family ordering the models predict: far below the
        // 2N floor of the best spinning policy.
        EXPECT_LT(
            s.accesses.mean(),
            0.5 * absync::core::model1VariableBackoffAccesses(n))
            << "N=" << n;
    }
}

TEST(SimModelOracle, HierarchicalQueueMatchesItsModel)
{
    // Two-level queue barrier (DESIGN.md §15): per-processor traffic
    // is the local enqueue F&A ((s+1)/2 attempts), the amortized
    // global enqueue ((T+1)/(2s)), and the amortized wake chains
    // ((N-1)/N) — independent of the local/remote latency split,
    // which delays grantees but never adds attempts.
    std::uint64_t seed = 701;
    for (const auto &[s, t] : {std::pair<std::uint32_t,
                                         std::uint32_t>{4u, 4u},
                               {8u, 4u},
                               {4u, 16u},
                               {16u, 8u}}) {
        absync::core::HierarchicalBarrierConfig cfg;
        cfg.processors = s * t;
        cfg.tileSize = s;
        cfg.localLatency = 2;
        cfg.remoteLatency = 12;
        cfg.arrivalWindow = 0;
        cfg.backoff = BackoffConfig::queue();
        const absync::core::EpisodeSummary sum =
            absync::core::HierarchicalBarrierSimulator(cfg).runMany(
                40, seed++);
        const double predicted =
            absync::core::modelHierarchicalAccesses(s, t);
        EXPECT_NEAR(sum.accesses.mean(), predicted,
                    0.20 * predicted)
            << "s=" << s << " T=" << t;
        // No polling term at either level: the flag modules must be
        // stone cold, as in the flat queue family.
        EXPECT_EQ(sum.flagTraffic.mean(), 0.0)
            << "queue mode touched a flag module at s=" << s
            << " T=" << t;
    }
}

} // namespace
