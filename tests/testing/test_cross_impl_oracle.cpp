/** @file Cross-implementation oracle: under seeded virtual schedules
 *        all four barrier implementations must produce phase logs
 *        that are valid (no skew beyond one, no lost arrival) and
 *        structurally identical to one another — and the three lock
 *        policy families (spin+backoff, backoff-on-state ticket,
 *        local-spin queue) must agree on admissions the same way. */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/barrier_interface.hpp"
#include "runtime/queue_lock.hpp"
#include "runtime/spinlock.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;

namespace
{

constexpr rt::BarrierKind kKinds[] = {
    rt::BarrierKind::Flat,
    rt::BarrierKind::TangYew,
    rt::BarrierKind::Tree,
    rt::BarrierKind::Adaptive,
    rt::BarrierKind::Hierarchical,
};

const char *
kindName(rt::BarrierKind kind)
{
    switch (kind) {
      case rt::BarrierKind::Flat:
        return "flat";
      case rt::BarrierKind::TangYew:
        return "tangyew";
      case rt::BarrierKind::Tree:
        return "tree";
      case rt::BarrierKind::Adaptive:
        return "adaptive";
      case rt::BarrierKind::Hierarchical:
        return "hierarchical";
    }
    return "?";
}

/** Order-insensitive structure of a log: sorted (phase, thread). */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
signature(const vt::PhaseLog &log)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sig;
    sig.reserve(log.events().size());
    for (const vt::PhaseLog::Event &e : log.events())
        sig.emplace_back(e.phase, e.thread);
    std::sort(sig.begin(), sig.end());
    return sig;
}

TEST(CrossImplOracle, AllKindsAgreeOnPhaseStructure)
{
    constexpr std::uint32_t kParties = 3;
    constexpr std::uint32_t kPhases = 3;

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        std::vector<std::vector<std::pair<std::uint32_t,
                                          std::uint32_t>>> sigs;
        for (const rt::BarrierKind kind : kKinds) {
            vt::BarrierEpisodeConfig cfg;
            cfg.kind = kind;
            cfg.parties = kParties;
            cfg.phases = kPhases;

            vt::VirtualSched sched;
            std::shared_ptr<vt::BarrierEpisodeState> state;
            vt::Episode ep =
                vt::barrierPhasesEpisode(sched, cfg, &state);
            vt::RandomDecider decider(seed);
            const vt::RunRecord rec =
                sched.run(ep.bodies, decider, ep.stepInvariant);

            ASSERT_TRUE(rec.completed)
                << kindName(kind) << " seed " << seed << ": "
                << rec.failure;
            EXPECT_TRUE(state->log.allCompleted(kPhases))
                << kindName(kind) << " seed " << seed;
            EXPECT_EQ(state->log.events().size(),
                      std::size_t{kParties} * kPhases);
            EXPECT_GT(state->barrier->polls(), 0u)
                << kindName(kind) << " seed " << seed;
            sigs.push_back(signature(state->log));
        }
        for (std::size_t k = 1; k < sigs.size(); ++k)
            EXPECT_EQ(sigs[0], sigs[k])
                << kindName(kKinds[k])
                << " disagrees with flat at seed " << seed;
    }
}

TEST(CrossImplOracle, AdaptivePolicyAgreesWithFixedPolicies)
{
    // The contention-feedback policy changes *when* waiters poll, not
    // what the barrier admits: for every kind, the phase-log
    // signature under BarrierPolicy::Adaptive must match the same
    // kind's default (fixed-exponential) run on the same seed.
    constexpr std::uint32_t kParties = 3;
    constexpr std::uint32_t kPhases = 3;

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        for (const rt::BarrierKind kind : kKinds) {
            std::vector<std::vector<std::pair<std::uint32_t,
                                              std::uint32_t>>> sigs;
            for (const rt::BarrierPolicy policy :
                 {rt::BarrierPolicy::Exponential,
                  rt::BarrierPolicy::Adaptive}) {
                vt::BarrierEpisodeConfig cfg;
                cfg.kind = kind;
                cfg.parties = kParties;
                cfg.phases = kPhases;
                cfg.barrier.policy = policy;

                vt::VirtualSched sched;
                std::shared_ptr<vt::BarrierEpisodeState> state;
                vt::Episode ep =
                    vt::barrierPhasesEpisode(sched, cfg, &state);
                vt::RandomDecider decider(seed);
                const vt::RunRecord rec =
                    sched.run(ep.bodies, decider, ep.stepInvariant);
                ASSERT_TRUE(rec.completed)
                    << kindName(kind) << " seed " << seed << ": "
                    << rec.failure;
                EXPECT_TRUE(state->log.allCompleted(kPhases))
                    << kindName(kind) << " seed " << seed;
                sigs.push_back(signature(state->log));
            }
            EXPECT_EQ(sigs[0], sigs[1])
                << kindName(kind)
                << ": adaptive policy disagrees with exponential "
                   "at seed "
                << seed;
        }
    }
}

TEST(CrossImplOracle, EventOrderRespectsPhasesWithinEveryKind)
{
    // Stronger per-log property, checked on the recorded order: the
    // i-th completion of phase p+1 can only appear after all parties
    // completed phase p (PhaseLog enforces it online; this re-derives
    // it offline from the event list as an independent check).
    for (const rt::BarrierKind kind : kKinds) {
        vt::BarrierEpisodeConfig cfg;
        cfg.kind = kind;
        cfg.parties = 2;
        cfg.phases = 4;

        vt::VirtualSched sched;
        std::shared_ptr<vt::BarrierEpisodeState> state;
        vt::Episode ep = vt::barrierPhasesEpisode(sched, cfg, &state);
        vt::RandomDecider decider(99);
        const vt::RunRecord rec =
            sched.run(ep.bodies, decider, ep.stepInvariant);
        ASSERT_TRUE(rec.completed)
            << kindName(kind) << ": " << rec.failure;

        std::vector<std::uint32_t> done(cfg.parties, 0);
        for (const vt::PhaseLog::Event &e : state->log.events()) {
            for (std::uint32_t u = 0; u < cfg.parties; ++u)
                ASSERT_GE(done[u] + 1, e.phase)
                    << kindName(kind) << ": phase skew beyond one";
            done[e.thread] = e.phase;
        }
        for (std::uint32_t u = 0; u < cfg.parties; ++u)
            EXPECT_EQ(done[u], cfg.phases);
    }
}

TEST(CrossImplOracle, HierarchicalAgreesWithEveryFlatKind)
{
    // The hierarchical barrier must be observationally identical to
    // the four flat kinds: for every tile shape that divides N and
    // both wake-down families, the phase-log signature matches the
    // flat reference under the same seeds.
    constexpr std::uint32_t kParties = 4;
    constexpr std::uint32_t kPhases = 3;

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        // Flat reference signature.
        vt::BarrierEpisodeConfig ref;
        ref.kind = rt::BarrierKind::Flat;
        ref.parties = kParties;
        ref.phases = kPhases;
        vt::VirtualSched rsched;
        std::shared_ptr<vt::BarrierEpisodeState> rstate;
        vt::Episode rep = vt::barrierPhasesEpisode(rsched, ref,
                                                   &rstate);
        vt::RandomDecider rdec(seed);
        const vt::RunRecord rrec =
            rsched.run(rep.bodies, rdec, rep.stepInvariant);
        ASSERT_TRUE(rrec.completed) << "flat seed " << seed << ": "
                                    << rrec.failure;
        const auto want = signature(rstate->log);

        for (const std::uint32_t tile : {1u, 2u, 4u}) {
            for (const bool queue : {false, true}) {
                vt::BarrierEpisodeConfig cfg;
                cfg.kind = rt::BarrierKind::Hierarchical;
                cfg.parties = kParties;
                cfg.phases = kPhases;
                cfg.barrier.tileSize = tile;
                cfg.barrier.queueWakeup = queue;

                vt::VirtualSched sched;
                std::shared_ptr<vt::BarrierEpisodeState> state;
                vt::Episode ep =
                    vt::barrierPhasesEpisode(sched, cfg, &state);
                vt::RandomDecider decider(seed);
                const vt::RunRecord rec =
                    sched.run(ep.bodies, decider, ep.stepInvariant);
                ASSERT_TRUE(rec.completed)
                    << "tile " << tile
                    << (queue ? " queue" : " spin") << " seed "
                    << seed << ": " << rec.failure;
                EXPECT_TRUE(state->log.allCompleted(kPhases));
                EXPECT_EQ(signature(state->log), want)
                    << "hierarchical tile " << tile
                    << (queue ? " queue" : " spin")
                    << " disagrees with flat at seed " << seed;
            }
        }
    }
}

// ---- Three-way lock-family agreement --------------------------------
//
// The same oracle idea applied to the lock families: force the
// arrival order 0 -> 1 -> ... -> n-1 with gate flags (a flag set
// immediately before lock() is published strictly before the enqueue
// becomes observable, because a VirtualSched worker runs
// uninterrupted between yield points), then compare admission logs.
// TicketLock, McsLock and ClhLock are all FIFO, so they must admit in
// exactly the gated order on every schedule; TtasLock is unfair, so
// it only has to admit the same *set* of threads exactly once each.

/** Uniform tid-taking shim over the C++-Lockable spinlocks. */
template <typename L>
struct LockShim
{
    L lock;
    void acquire(std::uint32_t) { lock.lock(); }
    void release(std::uint32_t) { lock.unlock(); }
};

template <typename L>
struct QueueShim
{
    L lock;
    explicit QueueShim(const rt::QueueLockConfig &cfg) : lock(cfg) {}
    void acquire(std::uint32_t tid) { lock.lock(tid); }
    void release(std::uint32_t tid) { lock.unlock(tid); }
};

/** Gated episode: returns the admission order for @p shim. */
template <typename Shim>
std::vector<std::uint32_t>
admissionOrder(std::shared_ptr<Shim> shim, std::uint32_t n,
               std::uint64_t seed)
{
    auto started = std::make_shared<std::vector<char>>(n, char{0});
    auto admissions =
        std::make_shared<std::vector<std::uint32_t>>();

    vt::VirtualSched sched;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([=](std::uint32_t id) {
        shim->acquire(id);
        admissions->push_back(id);
        (*started)[0] = 1;
        // Hold until the whole chain is provably enqueued.
        while (!(*started)[n - 1])
            rt::cpuRelax();
        shim->release(id);
    });
    for (std::uint32_t t = 1; t < n; ++t) {
        bodies.push_back([=](std::uint32_t id) {
            while (!(*started)[id - 1])
                rt::cpuRelax();
            (*started)[id] = 1; // published before the enqueue
            shim->acquire(id);
            admissions->push_back(id);
            shim->release(id);
        });
    }
    vt::RandomDecider decider(seed);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_TRUE(rec.completed) << "seed " << seed << ": "
                               << rec.failure;
    return *admissions;
}

TEST(CrossImplOracle, LockFamiliesAgreeOnAdmissions)
{
    constexpr std::uint32_t kThreads = 4;
    std::vector<std::uint32_t> fifo(kThreads);
    for (std::uint32_t t = 0; t < kThreads; ++t)
        fifo[t] = t;

    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        rt::QueueLockConfig qcfg;
        qcfg.maxThreads = kThreads;

        const auto ticket = admissionOrder(
            std::make_shared<LockShim<rt::TicketLock>>(), kThreads,
            seed);
        const auto mcs = admissionOrder(
            std::make_shared<QueueShim<rt::McsLock>>(qcfg), kThreads,
            seed);
        const auto clh = admissionOrder(
            std::make_shared<QueueShim<rt::ClhLock>>(qcfg), kThreads,
            seed);

        // FIFO families: identical admission sequences, which under
        // the gated arrival order pins all three to 0..n-1.
        EXPECT_EQ(ticket, fifo) << "ticket, seed " << seed;
        EXPECT_EQ(mcs, fifo) << "mcs, seed " << seed;
        EXPECT_EQ(clh, fifo) << "clh, seed " << seed;
        EXPECT_EQ(ticket, mcs) << "seed " << seed;
        EXPECT_EQ(mcs, clh) << "seed " << seed;

        // Adaptive grant-wait pacing must not change FIFO handoff.
        rt::QueueLockConfig acfg = qcfg;
        acfg.adaptive = true;
        const auto mcs_adaptive = admissionOrder(
            std::make_shared<QueueShim<rt::McsLock>>(acfg), kThreads,
            seed);
        const auto clh_adaptive = admissionOrder(
            std::make_shared<QueueShim<rt::ClhLock>>(acfg), kThreads,
            seed);
        EXPECT_EQ(mcs_adaptive, fifo) << "mcs adaptive, seed " << seed;
        EXPECT_EQ(clh_adaptive, fifo) << "clh adaptive, seed " << seed;

        // Unfair spin+backoff family: same multiset of admissions.
        auto ttas = admissionOrder(
            std::make_shared<LockShim<rt::TtasLock<>>>(), kThreads,
            seed);
        std::sort(ttas.begin(), ttas.end());
        EXPECT_EQ(ttas, fifo) << "ttas, seed " << seed;
    }
}

} // namespace
