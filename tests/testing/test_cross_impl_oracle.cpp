/** @file Cross-implementation oracle: under seeded virtual schedules
 *        all four barrier implementations must produce phase logs
 *        that are valid (no skew beyond one, no lost arrival) and
 *        structurally identical to one another. */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/barrier_interface.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;

namespace
{

constexpr rt::BarrierKind kKinds[] = {
    rt::BarrierKind::Flat,
    rt::BarrierKind::TangYew,
    rt::BarrierKind::Tree,
    rt::BarrierKind::Adaptive,
};

const char *
kindName(rt::BarrierKind kind)
{
    switch (kind) {
      case rt::BarrierKind::Flat:
        return "flat";
      case rt::BarrierKind::TangYew:
        return "tangyew";
      case rt::BarrierKind::Tree:
        return "tree";
      case rt::BarrierKind::Adaptive:
        return "adaptive";
    }
    return "?";
}

/** Order-insensitive structure of a log: sorted (phase, thread). */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
signature(const vt::PhaseLog &log)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sig;
    sig.reserve(log.events().size());
    for (const vt::PhaseLog::Event &e : log.events())
        sig.emplace_back(e.phase, e.thread);
    std::sort(sig.begin(), sig.end());
    return sig;
}

TEST(CrossImplOracle, AllKindsAgreeOnPhaseStructure)
{
    constexpr std::uint32_t kParties = 3;
    constexpr std::uint32_t kPhases = 3;

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        std::vector<std::vector<std::pair<std::uint32_t,
                                          std::uint32_t>>> sigs;
        for (const rt::BarrierKind kind : kKinds) {
            vt::BarrierEpisodeConfig cfg;
            cfg.kind = kind;
            cfg.parties = kParties;
            cfg.phases = kPhases;

            vt::VirtualSched sched;
            std::shared_ptr<vt::BarrierEpisodeState> state;
            vt::Episode ep =
                vt::barrierPhasesEpisode(sched, cfg, &state);
            vt::RandomDecider decider(seed);
            const vt::RunRecord rec =
                sched.run(ep.bodies, decider, ep.stepInvariant);

            ASSERT_TRUE(rec.completed)
                << kindName(kind) << " seed " << seed << ": "
                << rec.failure;
            EXPECT_TRUE(state->log.allCompleted(kPhases))
                << kindName(kind) << " seed " << seed;
            EXPECT_EQ(state->log.events().size(),
                      std::size_t{kParties} * kPhases);
            EXPECT_GT(state->barrier->polls(), 0u)
                << kindName(kind) << " seed " << seed;
            sigs.push_back(signature(state->log));
        }
        for (std::size_t k = 1; k < sigs.size(); ++k)
            EXPECT_EQ(sigs[0], sigs[k])
                << kindName(kKinds[k])
                << " disagrees with flat at seed " << seed;
    }
}

TEST(CrossImplOracle, EventOrderRespectsPhasesWithinEveryKind)
{
    // Stronger per-log property, checked on the recorded order: the
    // i-th completion of phase p+1 can only appear after all parties
    // completed phase p (PhaseLog enforces it online; this re-derives
    // it offline from the event list as an independent check).
    for (const rt::BarrierKind kind : kKinds) {
        vt::BarrierEpisodeConfig cfg;
        cfg.kind = kind;
        cfg.parties = 2;
        cfg.phases = 4;

        vt::VirtualSched sched;
        std::shared_ptr<vt::BarrierEpisodeState> state;
        vt::Episode ep = vt::barrierPhasesEpisode(sched, cfg, &state);
        vt::RandomDecider decider(99);
        const vt::RunRecord rec =
            sched.run(ep.bodies, decider, ep.stepInvariant);
        ASSERT_TRUE(rec.completed)
            << kindName(kind) << ": " << rec.failure;

        std::vector<std::uint32_t> done(cfg.parties, 0);
        for (const vt::PhaseLog::Event &e : state->log.events()) {
            for (std::uint32_t u = 0; u < cfg.parties; ++u)
                ASSERT_GE(done[u] + 1, e.phase)
                    << kindName(kind) << ": phase skew beyond one";
            done[e.thread] = e.phase;
        }
        for (std::uint32_t u = 0; u < cfg.parties; ++u)
            EXPECT_EQ(done[u], cfg.phases);
    }
}

} // namespace
