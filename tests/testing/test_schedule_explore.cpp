/** @file Schedule-space exploration: bounded exhaustive enumeration
 *        of small barrier episodes and fuzz campaigns over every
 *        barrier kind, waiting policy, and the resource pool. */

#include <cstdint>
#include <iostream>
#include <memory>

#include <gtest/gtest.h>

#include "runtime/barrier.hpp"
#include "runtime/barrier_interface.hpp"
#include "runtime/resource_pool.hpp"
#include "runtime/spin_backoff.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;

namespace
{

TEST(ScheduleExplore, ExhaustiveTwoThreadTwoPhaseFlatBarrier)
{
    // The acceptance case: every interleaving of a 2-thread, 2-phase
    // flat-barrier episode whose first 10 scheduling choices are
    // enumerated exhaustively, with the phase-ordering oracle armed.
    vt::BarrierEpisodeConfig cfg;
    cfg.kind = rt::BarrierKind::Flat;
    cfg.parties = 2;
    cfg.phases = 2;
    cfg.barrier.policy = rt::BarrierPolicy::None;

    vt::ExploreConfig xc;
    xc.branchDepth = 10;
    xc.maxRuns = 20000;
    const vt::ExploreReport rep =
        vt::exploreSchedules(vt::barrierPhasesFactory(cfg), xc);

    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted)
        << "bounded tree not fully enumerated within " << xc.maxRuns
        << " runs";
    EXPECT_GE(rep.interleavings, 2u);
    ::testing::Test::RecordProperty(
        "interleavings", static_cast<int>(rep.interleavings));
    std::cout << "[ explore  ] flat 2 threads x 2 phases, depth "
              << xc.branchDepth << ": " << rep.interleavings
              << " distinct interleavings\n";
}

TEST(ScheduleExplore, ExhaustiveTangYewWithBackoff)
{
    vt::BarrierEpisodeConfig cfg;
    cfg.kind = rt::BarrierKind::TangYew;
    cfg.parties = 2;
    cfg.phases = 2;
    cfg.barrier.policy = rt::BarrierPolicy::Exponential;

    vt::ExploreConfig xc;
    xc.branchDepth = 8;
    xc.maxRuns = 20000;
    const vt::ExploreReport rep =
        vt::exploreSchedules(vt::barrierPhasesFactory(cfg), xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted);
    EXPECT_GE(rep.interleavings, 2u);
}

TEST(ScheduleExplore, FuzzAllBarrierKinds)
{
    for (const rt::BarrierKind kind :
         {rt::BarrierKind::Flat, rt::BarrierKind::TangYew,
          rt::BarrierKind::Tree, rt::BarrierKind::Adaptive,
          rt::BarrierKind::Hierarchical}) {
        vt::BarrierEpisodeConfig cfg;
        cfg.kind = kind;
        cfg.parties = 3;
        cfg.phases = 3;
        vt::FuzzConfig fc;
        fc.runs = 20;
        fc.seed0 = 7;
        const vt::FuzzReport rep =
            vt::fuzzSchedules(vt::barrierPhasesFactory(cfg), fc);
        EXPECT_FALSE(rep.failed)
            << "kind " << static_cast<int>(kind)
            << ", replay with seed " << rep.failingSeed << ": "
            << rep.failure;
        EXPECT_EQ(rep.runsDone, fc.runs);
    }
}

TEST(ScheduleExplore, FuzzAllFlatPolicies)
{
    for (const rt::BarrierPolicy policy :
         {rt::BarrierPolicy::None, rt::BarrierPolicy::Variable,
          rt::BarrierPolicy::Linear, rt::BarrierPolicy::Exponential,
          rt::BarrierPolicy::Blocking}) {
        vt::BarrierEpisodeConfig cfg;
        cfg.kind = rt::BarrierKind::Flat;
        cfg.parties = 2;
        cfg.phases = 2;
        cfg.barrier.policy = policy;
        // Make the Blocking policy actually cross its threshold under
        // the virtual schedule.
        cfg.barrier.blockThreshold = 16;
        vt::FuzzConfig fc;
        fc.runs = 15;
        fc.seed0 = 31;
        const vt::FuzzReport rep =
            vt::fuzzSchedules(vt::barrierPhasesFactory(cfg), fc);
        EXPECT_FALSE(rep.failed)
            << "policy " << static_cast<int>(policy)
            << ", replay with seed " << rep.failingSeed << ": "
            << rep.failure;
    }
}

TEST(ScheduleExplore, FuzzTreeTimedResumeNeverDoubleCounts)
{
    // Tree-barrier timed waits park a continuation instead of
    // withdrawing; the same thread's next call resumes it.  Under
    // arbitrary schedules a resumed arrival must still count exactly
    // once per phase — the PhaseLog trips on any double count or
    // premature release.
    const vt::EpisodeFactory factory = [](vt::VirtualSched &sched) {
        struct State
        {
            std::unique_ptr<rt::AnyBarrier> barrier;
            vt::PhaseLog log{2};
        };
        auto st = std::make_shared<State>();
        rt::BarrierConfig cfg;
        cfg.policy = rt::BarrierPolicy::Variable;
        cfg.sched = &sched;
        st->barrier = rt::makeBarrier(rt::BarrierKind::Tree, 2, cfg);

        vt::Episode ep;
        ep.bodies.push_back([st, &sched](std::uint32_t id) {
            for (std::uint32_t p = 1; p <= 2; ++p) {
                std::uint32_t attempts = 0;
                while (st->barrier->arriveFor(
                           id, sched.deadlineIn(200)) ==
                       rt::WaitResult::Timeout) {
                    if (++attempts > 10000)
                        sched.fail("timed arrive never resumed");
                }
                const std::string err = st->log.record(id, p);
                if (!err.empty())
                    sched.fail(err);
            }
        });
        ep.bodies.push_back([st, &sched](std::uint32_t id) {
            for (std::uint32_t p = 1; p <= 2; ++p) {
                rt::spinFor(700); // straggle past several deadlines
                st->barrier->arrive(id);
                const std::string err = st->log.record(id, p);
                if (!err.empty())
                    sched.fail(err);
            }
        });
        return ep;
    };

    vt::FuzzConfig fc;
    fc.runs = 40;
    fc.seed0 = 400;
    const vt::FuzzReport rep = vt::fuzzSchedules(factory, fc);
    EXPECT_FALSE(rep.failed)
        << "replay with seed " << rep.failingSeed << ": "
        << rep.failure;
}

TEST(ScheduleExplore, FuzzResourcePoolMutualExclusion)
{
    // A 1-slot BackoffResource is a lock; under any schedule at most
    // one worker may be inside the critical section.  The pool's
    // waiting loops are hooked transparently through the installed
    // thread-local hook (no config field needed).
    const vt::EpisodeFactory factory = [](vt::VirtualSched &sched) {
        struct State
        {
            rt::BackoffResource pool{
                1, rt::ResourcePolicy::Proportional, 8};
            int inside = 0;
        };
        auto st = std::make_shared<State>();
        vt::Episode ep;
        for (int t = 0; t < 3; ++t) {
            ep.bodies.push_back([st, &sched](std::uint32_t) {
                for (int i = 0; i < 2; ++i) {
                    st->pool.acquire();
                    ++st->inside;
                    sched.require(st->inside == 1,
                                  "two holders of a 1-slot resource");
                    rt::spinFor(3);
                    sched.require(st->inside == 1,
                                  "holder admitted mid-critical-"
                                  "section");
                    --st->inside;
                    st->pool.release();
                }
            });
        }
        return ep;
    };

    vt::FuzzConfig fc;
    fc.runs = 30;
    fc.seed0 = 900;
    const vt::FuzzReport rep = vt::fuzzSchedules(factory, fc);
    EXPECT_FALSE(rep.failed)
        << "replay with seed " << rep.failingSeed << ": "
        << rep.failure;
}

TEST(ScheduleExplore, FailingScriptReplaysTheFailure)
{
    // Plant a schedule-dependent bug and check the explorer both
    // finds it and hands back a script that reproduces it.
    const vt::EpisodeFactory factory = [](vt::VirtualSched &sched) {
        auto turn = std::make_shared<int>(0);
        vt::Episode ep;
        ep.bodies.push_back([turn, &sched](std::uint32_t) {
            rt::cpuRelax();
            *turn = 1;
            rt::cpuRelax();
            if (*turn == 2)
                sched.fail("planted order bug");
        });
        ep.bodies.push_back([turn](std::uint32_t) {
            rt::cpuRelax();
            *turn = 2;
            rt::cpuRelax();
        });
        return ep;
    };

    vt::ExploreConfig xc;
    xc.branchDepth = 8;
    xc.maxRuns = 5000;
    const vt::ExploreReport rep = vt::exploreSchedules(factory, xc);
    ASSERT_TRUE(rep.failed) << "planted bug not found in "
                            << rep.interleavings << " interleavings";
    EXPECT_NE(rep.failure.find("planted order bug"),
              std::string::npos);

    // The returned script must deterministically reproduce it.
    vt::VirtualSched sched(xc.sched);
    vt::Episode ep = factory(sched);
    vt::ScriptedDecider decider(rep.failingScript, xc.branchDepth);
    const vt::RunRecord replay =
        sched.run(ep.bodies, decider, ep.stepInvariant);
    EXPECT_FALSE(replay.completed);
    EXPECT_EQ(replay.failure, rep.failure);
}

} // namespace
