/** @file Tests of the VirtualSched harness itself: determinism and
 *        replay, the virtual clock, failure reporting, livelock
 *        detection, and the native fallback on unmanaged threads. */

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/barrier.hpp"
#include "runtime/resource_pool.hpp"
#include "runtime/spin_backoff.hpp"
#include "runtime/wait_result.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;

namespace
{

TEST(VirtualSched, RunsBodiesToCompletion)
{
    vt::VirtualSched sched;
    int ran = 0;
    std::vector<vt::VirtualSched::Body> bodies;
    for (int i = 0; i < 3; ++i)
        bodies.push_back([&ran](std::uint32_t) {
            rt::cpuRelax(); // a yield point
            ++ran;
        });
    vt::RandomDecider decider(1);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_TRUE(rec.completed) << rec.failure;
    EXPECT_EQ(ran, 3);
    EXPECT_GT(rec.steps, 0u);
}

TEST(VirtualSched, SameSeedReplaysIdenticalSchedule)
{
    vt::BarrierEpisodeConfig cfg;
    cfg.kind = rt::BarrierKind::Flat;
    cfg.parties = 3;
    cfg.phases = 2;
    const vt::EpisodeFactory factory = vt::barrierPhasesFactory(cfg);

    const vt::RunRecord a = vt::runSeededSchedule(factory, 42);
    const vt::RunRecord b = vt::runSeededSchedule(factory, 42);
    ASSERT_TRUE(a.completed) << a.failure;
    ASSERT_TRUE(b.completed) << b.failure;
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.trace, b.trace);

    // Distinct seeds must be able to produce distinct interleavings,
    // otherwise the fuzzer explores nothing.
    std::set<std::vector<std::uint32_t>> traces;
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        traces.insert(vt::runSeededSchedule(factory, seed).trace);
    EXPECT_GT(traces.size(), 1u);
}

TEST(VirtualSched, VirtualClockDrivesDeadlines)
{
    vt::VirtualSched sched;
    bool expired_before = true;
    bool expired_after = false;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&](std::uint32_t) {
        const rt::Deadline dl = sched.deadlineIn(1000);
        expired_before = rt::deadlineExpired(dl);
        rt::spinFor(2000); // advances virtual time by 2000 ticks
        expired_after = rt::deadlineExpired(dl);
    });
    vt::RandomDecider decider(3);
    const vt::RunRecord rec = sched.run(bodies, decider);
    ASSERT_TRUE(rec.completed) << rec.failure;
    EXPECT_FALSE(expired_before);
    EXPECT_TRUE(expired_after);
    EXPECT_GE(rec.ticks, 2000u);
}

TEST(VirtualSched, SpinForUntilHonorsVirtualDeadline)
{
    vt::VirtualSched sched;
    bool cut_short = true;
    bool ran_full = false;
    bool expired_at_cut = false;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&](std::uint32_t) {
        const rt::Deadline tight = sched.deadlineIn(500);
        const rt::SpinOutcome cut = rt::spinForUntil(10000, tight);
        cut_short = cut.completed;
        if (cut.slept >= cut.requested || cut.slept > 500)
            sched.fail("deadline-cut spin reported a full sleep");
        expired_at_cut = rt::deadlineExpired(tight);
        const rt::Deadline roomy = sched.deadlineIn(100000);
        const rt::SpinOutcome full = rt::spinForUntil(300, roomy);
        ran_full = full.completed;
        if (full.slept != 300)
            sched.fail("uncut spin must sleep exactly its request");
    });
    vt::RandomDecider decider(5);
    const vt::RunRecord rec = sched.run(bodies, decider);
    ASSERT_TRUE(rec.completed) << rec.failure;
    EXPECT_FALSE(cut_short) << "10000-tick spin ignored a 500-tick "
                               "deadline";
    EXPECT_TRUE(expired_at_cut);
    EXPECT_TRUE(ran_full);
}

TEST(VirtualSched, TimedResourceAcquireTimesOutDeterministically)
{
    vt::VirtualSched sched;
    rt::WaitResult result = rt::WaitResult::Ok;
    bool expired = false;
    std::uint32_t held_after = 1;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&](std::uint32_t) {
        rt::BackoffResource pool(1, rt::ResourcePolicy::Proportional,
                                 8);
        pool.acquire(); // instant: the slot is free
        const rt::Deadline dl = sched.deadlineIn(100);
        result = pool.acquireFor(dl); // full: must time out
        expired = rt::deadlineExpired(dl);
        pool.release();
        held_after = pool.inUse();
    });
    vt::RandomDecider decider(7);
    const vt::RunRecord rec = sched.run(bodies, decider);
    ASSERT_TRUE(rec.completed) << rec.failure;
    EXPECT_EQ(result, rt::WaitResult::Timeout);
    EXPECT_TRUE(expired) << "Timeout reported before the deadline";
    EXPECT_EQ(held_after, 0u) << "timed-out acquire left a slot held";
}

TEST(VirtualSched, FailAbortsAllWorkers)
{
    vt::VirtualSched sched;
    std::atomic<bool> flag{false};
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&](std::uint32_t) { sched.fail("boom"); });
    bodies.push_back([&](std::uint32_t) {
        // Would spin forever; must be unwound by the abort.
        while (!flag.load(std::memory_order_acquire))
            rt::cpuRelax();
    });
    vt::RandomDecider decider(1);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_FALSE(rec.completed);
    EXPECT_NE(rec.failure.find("boom"), std::string::npos)
        << rec.failure;
}

TEST(VirtualSched, WorkerExceptionIsReported)
{
    vt::VirtualSched sched;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([](std::uint32_t) {
        throw std::runtime_error("kaput");
    });
    vt::RandomDecider decider(1);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_FALSE(rec.completed);
    EXPECT_NE(rec.failure.find("kaput"), std::string::npos)
        << rec.failure;
}

TEST(VirtualSched, MaxStepsDetectsLivelock)
{
    vt::VirtualSchedConfig cfg;
    cfg.maxSteps = 500;
    vt::VirtualSched sched(cfg);
    std::atomic<bool> never{false};
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&](std::uint32_t) {
        while (!never.load(std::memory_order_acquire))
            rt::cpuRelax(); // lost wakeup: nobody will ever set it
    });
    vt::RandomDecider decider(1);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_FALSE(rec.completed);
    EXPECT_NE(rec.failure.find("maxSteps"), std::string::npos)
        << rec.failure;
}

TEST(VirtualSched, StepInvariantFailureStopsTheRun)
{
    vt::VirtualSched sched;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([](std::uint32_t) {
        for (int i = 0; i < 50; ++i)
            rt::cpuRelax();
    });
    vt::RandomDecider decider(1);
    int calls = 0;
    const vt::RunRecord rec =
        sched.run(bodies, decider, [&calls]() -> std::string {
            return ++calls >= 3 ? "tripwire" : "";
        });
    EXPECT_FALSE(rec.completed);
    EXPECT_EQ(rec.failure, "tripwire");
}

TEST(VirtualSched, ForeignThreadsFallBackToNativeSpinning)
{
    // A barrier carrying a sched hook must stay usable from threads
    // the scheduler does not manage: the hook detects the foreign
    // caller and spins natively.
    vt::VirtualSched sched; // idle: manages no threads
    rt::BarrierConfig cfg;
    cfg.policy = rt::BarrierPolicy::Exponential;
    cfg.sched = &sched;
    rt::SpinBarrier barrier(2, cfg);
    std::thread a([&] { barrier.arriveAndWait(); });
    std::thread b([&] { barrier.arriveAndWait(); });
    a.join();
    b.join();
    EXPECT_GE(barrier.totalPolls(), 2u);
}

TEST(VirtualSchedBarrier, TimeoutWithdrawalAndRejoinUnderFuzz)
{
    // Flat-barrier withdrawal contract under many schedules: a timed
    // arrival that reports Timeout has withdrawn, so the phase cannot
    // complete until that thread rejoins; and Timeout is only ever
    // reported at or after the deadline.
    const vt::EpisodeFactory factory = [](vt::VirtualSched &sched) {
        struct State
        {
            rt::SpinBarrier barrier;
            bool t0_timed_out = false;
            bool t0_rejoin_started = false;
            bool t1_done = false;
            explicit State(const rt::BarrierConfig &cfg)
                : barrier(2, cfg)
            {
            }
        };
        rt::BarrierConfig cfg;
        cfg.policy = rt::BarrierPolicy::None;
        cfg.sched = &sched;
        auto st = std::make_shared<State>(cfg);

        vt::Episode ep;
        ep.bodies.push_back([st, &sched](std::uint32_t) {
            const rt::Deadline dl = sched.deadlineIn(500);
            const rt::WaitResult r = st->barrier.arriveAndWaitFor(dl);
            if (r == rt::WaitResult::Timeout) {
                st->t0_timed_out = true;
                sched.require(sched.now() >= dl,
                              "Timeout reported before the deadline");
                sched.require(!st->t1_done,
                              "t1 passed the barrier although t0 had "
                              "withdrawn");
                st->t0_rejoin_started = true;
                st->barrier.arriveAndWait();
            }
        });
        ep.bodies.push_back([st, &sched](std::uint32_t) {
            rt::spinFor(10000); // straggle well past t0's deadline
            st->barrier.arriveAndWait();
            if (st->t0_timed_out)
                sched.require(st->t0_rejoin_started,
                              "phase completed without t0's rejoin "
                              "arrival (withdrawal double-count)");
            st->t1_done = true;
        });
        return ep;
    };

    vt::FuzzConfig fc;
    fc.runs = 40;
    fc.seed0 = 100;
    const vt::FuzzReport rep = vt::fuzzSchedules(factory, fc);
    EXPECT_FALSE(rep.failed)
        << "replay with seed " << rep.failingSeed << ": "
        << rep.failure;
    EXPECT_EQ(rep.runsDone, fc.runs);
}

} // namespace
