/** @file Unit, integration, and property tests for the barrier
 *        episode simulator against the paper's models and claims. */

#include <gtest/gtest.h>

#include <tuple>

#include "core/backoff.hpp"
#include "core/barrier_sim.hpp"
#include "core/models.hpp"
#include "support/fault.hpp"

using namespace absync::core;
using absync::support::Rng;

namespace
{

BarrierConfig
makeConfig(std::uint32_t n, std::uint64_t a, const BackoffConfig &bo)
{
    BarrierConfig cfg;
    cfg.processors = n;
    cfg.arrivalWindow = a;
    cfg.backoff = bo;
    return cfg;
}

} // namespace

TEST(BarrierSim, SingleProcessorTrivial)
{
    BarrierSimulator sim(makeConfig(1, 0, BackoffConfig::none()));
    Rng rng(1);
    const auto res = sim.runOnce(rng);
    ASSERT_EQ(res.procs.size(), 1u);
    // One variable access plus one flag write.
    EXPECT_EQ(res.procs[0].accesses, 2u);
    EXPECT_FALSE(res.procs[0].blocked);
}

TEST(BarrierSim, AllProcessorsComplete)
{
    BarrierSimulator sim(makeConfig(32, 100, BackoffConfig::none()));
    Rng rng(2);
    const auto res = sim.runOnce(rng);
    for (const auto &p : res.procs) {
        EXPECT_GE(p.accesses, 2u) << "at least one F&A and one poll";
    }
}

TEST(BarrierSim, FlagSetAfterLastArrival)
{
    BarrierSimulator sim(makeConfig(16, 1000, BackoffConfig::none()));
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        const auto res = sim.runOnce(rng);
        EXPECT_GE(res.flagSetTime, res.lastArrival);
        EXPECT_GE(res.lastExitTime, res.flagSetTime);
    }
}

TEST(BarrierSim, CounterSnapshotMatchesPerProcTotals)
{
    // The telemetry-schema snapshot the simulator fills must agree
    // with its own per-processor statistics: submissions split into
    // variable-module RMWs and flag-module polls, and their sum is
    // the paper's network accesses.  This holds in every build —
    // EpisodeResult.counters is simulation output, not hot-path
    // recording.
    const BackoffConfig configs[] = {BackoffConfig::none(),
                                     BackoffConfig::variableOnly(),
                                     BackoffConfig::exponentialFlag(2)};
    for (const BackoffConfig &bo : configs) {
        BarrierSimulator sim(makeConfig(16, 200, bo));
        Rng rng(11);
        const auto res = sim.runOnce(rng);
        std::uint64_t total_accesses = 0;
        for (const auto &p : res.procs)
            total_accesses += p.accesses;
        EXPECT_EQ(res.counters.accesses(), total_accesses);
        EXPECT_EQ(res.counters.counterRmws +
                      res.counters.flagPolls,
                  res.counters.accesses());
        EXPECT_EQ(res.counters.counterRmws, res.varModuleTraffic);
        EXPECT_EQ(res.counters.flagPolls, res.flagModuleTraffic);
        // Everyone finished: one episode per processor, no timeouts.
        EXPECT_EQ(res.counters.episodes, 16u);
        EXPECT_EQ(res.counters.timeouts, 0u);
        EXPECT_EQ(res.counters.withdrawals, 0u);
        EXPECT_GE(res.counters.backoffRequested,
                  res.counters.backoffWaited);
    }
}

TEST(BarrierSim, QueueWakeupCountersAndFifoOrder)
{
    // Queue mode's counter contract differs from the polling
    // policies: waiters never touch the flag module, so the flag side
    // of the ledger is zero and per-processor accesses decompose into
    // enqueue RMWs plus the waker's handoff writes.
    constexpr std::uint32_t kN = 16;
    BarrierSimulator sim(makeConfig(kN, 200, BackoffConfig::queue()));
    Rng rng(13);
    for (int i = 0; i < 10; ++i) {
        const auto res = sim.runOnce(rng);
        std::uint64_t total_accesses = 0;
        for (const auto &p : res.procs) {
            EXPECT_FALSE(p.timedOut);
            total_accesses += p.accesses;
        }
        EXPECT_EQ(res.counters.flagPolls, 0u);
        EXPECT_EQ(res.flagModuleTraffic, 0u);
        EXPECT_EQ(total_accesses, res.counters.counterRmws +
                                      res.counters.queueHandoffs);
        // Everyone but the last arriver is woken by a handoff.
        EXPECT_EQ(res.counters.queueHandoffs, std::uint64_t{kN} - 1);
        EXPECT_EQ(res.counters.nodesAbandoned, 0u);
        // The wake walk starts when the last arriver gets through
        // the variable and retires one waiter per cycle, so the
        // barrier drains in at most N cycles past the flag-set time.
        EXPECT_GE(res.flagSetTime, res.lastArrival);
        EXPECT_LE(res.lastExitTime, res.flagSetTime + kN);
    }
}

TEST(BarrierSim, QueueWakeupSkipsAbandonedNodes)
{
    // With a timeout tight enough that some waiters withdraw
    // mid-queue, the waker must skip their nodes (counting them) and
    // still wake every live waiter.
    // Simultaneous arrival: the wake walk retires one waiter per
    // cycle from ~cycle N, so a 20-cycle budget lets the first few
    // handoffs land and forces everyone deeper in the queue to
    // abandon.
    BarrierConfig cfg = makeConfig(16, 0, BackoffConfig::queue());
    cfg.timeoutCycles = 20;
    BarrierSimulator sim(cfg);
    Rng rng(17);
    std::uint64_t abandoned = 0;
    for (int i = 0; i < 20; ++i) {
        const auto res = sim.runOnce(rng);
        std::uint64_t timed_out = 0;
        for (const auto &p : res.procs)
            timed_out += p.timedOut ? 1 : 0;
        // Every timed-out waiter was enqueued, so its node is
        // exactly the abandoned count for the episode.
        EXPECT_EQ(res.counters.nodesAbandoned, timed_out);
        EXPECT_EQ(res.counters.queueHandoffs + timed_out,
                  std::uint64_t{16} - 1);
        abandoned += res.counters.nodesAbandoned;
    }
    EXPECT_GT(abandoned, 0u) << "timeout never fired: the skip path "
                                "went untested";
}

TEST(BarrierSim, DeterministicForSeed)
{
    BarrierConfig cfg =
        makeConfig(64, 500, BackoffConfig::exponentialFlag(2));
    BarrierSimulator sim(cfg);
    const auto a = sim.runMany(10, 42);
    const auto b = sim.runMany(10, 42);
    EXPECT_DOUBLE_EQ(a.accesses.mean(), b.accesses.mean());
    EXPECT_DOUBLE_EQ(a.wait.mean(), b.wait.mean());
}

TEST(BarrierSim, Model1MatchesSimultaneousArrival)
{
    // Paper Fig. 4 / Sec 6.2: A = 0, no backoff ~ 5N/2 accesses.
    for (std::uint32_t n : {16u, 64u, 128u}) {
        BarrierSimulator sim(makeConfig(n, 0, BackoffConfig::none()));
        const auto s = sim.runMany(50, 7);
        EXPECT_NEAR(s.accesses.mean(), model1Accesses(n),
                    0.15 * model1Accesses(n))
            << "N=" << n;
    }
}

TEST(BarrierSim, Model2MatchesSparseArrival)
{
    // Paper Fig. 4: A = 1000 >> N, no backoff ~ r/2 + 3N/2.
    for (std::uint32_t n : {4u, 16u, 64u}) {
        BarrierSimulator sim(
            makeConfig(n, 1000, BackoffConfig::none()));
        const auto s = sim.runMany(100, 11);
        const double predicted = model2Accesses(1000.0, n);
        EXPECT_NEAR(s.accesses.mean(), predicted, 0.15 * predicted)
            << "N=" << n;
    }
}

TEST(BarrierSim, ExpectedSpanMatchesEq1)
{
    BarrierSimulator sim(makeConfig(16, 1000, BackoffConfig::none()));
    const auto s = sim.runMany(200, 13);
    EXPECT_NEAR(s.span.mean(), expectedSpan(1000.0, 16),
                0.05 * expectedSpan(1000.0, 16));
}

TEST(BarrierSim, VariableBackoffSavesAtSimultaneousArrival)
{
    // Sec 6.2: N=64, A=0: ~160 accesses without, ~132 with variable
    // backoff (a 15-20 % cut).
    const auto none =
        BarrierSimulator(makeConfig(64, 0, BackoffConfig::none()))
            .runMany(100, 17);
    const auto var = BarrierSimulator(
                         makeConfig(64, 0, BackoffConfig::variableOnly()))
                         .runMany(100, 17);
    EXPECT_NEAR(none.accesses.mean(), 160.0, 25.0);
    EXPECT_LT(var.accesses.mean(), none.accesses.mean());
    const double cut =
        1.0 - var.accesses.mean() / none.accesses.mean();
    EXPECT_GT(cut, 0.10);
    EXPECT_LT(cut, 0.35);
}

TEST(BarrierSim, ExponentialBackoffDramaticAtLargeA)
{
    // Sec 6.2: A=1000, N=16, binary backoff: >95 % fewer accesses.
    const auto none =
        BarrierSimulator(makeConfig(16, 1000, BackoffConfig::none()))
            .runMany(100, 19);
    const auto exp2 =
        BarrierSimulator(
            makeConfig(16, 1000, BackoffConfig::exponentialFlag(2)))
            .runMany(100, 19);
    const double cut =
        1.0 - exp2.accesses.mean() / none.accesses.mean();
    EXPECT_GT(cut, 0.90);
}

TEST(BarrierSim, ExponentialBackoffNoEffectAtAZero)
{
    // Sec 6.2: at A=0 everyone arrives together, so flag backoff adds
    // nothing beyond the variable backoff.
    const auto var = BarrierSimulator(
                         makeConfig(64, 0, BackoffConfig::variableOnly()))
                         .runMany(100, 23);
    const auto exp8 =
        BarrierSimulator(
            makeConfig(64, 0, BackoffConfig::exponentialFlag(8)))
            .runMany(100, 23);
    EXPECT_NEAR(exp8.accesses.mean(), var.accesses.mean(),
                0.15 * var.accesses.mean());
}

TEST(BarrierSim, BackoffTradesWaitForAccesses)
{
    // Sec 7: A=1000, N=64: base-8 backoff increases waiting time
    // several-fold while slashing accesses.
    const auto none =
        BarrierSimulator(makeConfig(64, 1000, BackoffConfig::none()))
            .runMany(100, 29);
    const auto exp8 =
        BarrierSimulator(
            makeConfig(64, 1000, BackoffConfig::exponentialFlag(8)))
            .runMany(100, 29);
    EXPECT_LT(exp8.accesses.mean(), 0.3 * none.accesses.mean());
    EXPECT_GT(exp8.wait.mean(), none.wait.mean());
}

TEST(BarrierSim, RunToRunVarianceSmallAsInPaper)
{
    // Sec 5.2: "the standard deviation was less than about 7% over
    // the hundred runs."  With A = 0 the FIFO model is essentially
    // deterministic; with A > 0 the sample span of N uniform arrivals
    // adds irreducible variance that shrinks as N grows (it is ~15 %
    // at N=16, A=1000 from arrival randomness alone).
    for (std::uint32_t n : {16u, 64u}) {
        for (std::uint64_t a : {0ull, 100ull, 1000ull}) {
            BarrierSimulator sim(
                makeConfig(n, a, BackoffConfig::none()));
            const auto s = sim.runMany(100, 31);
            const double limit = a == 0 ? 0.02 : 0.18;
            EXPECT_LT(s.accesses.cv(), limit)
                << "N=" << n << " A=" << a;
        }
    }
    // At the paper's 64-processor scale the 7 % claim holds directly.
    for (std::uint64_t a : {0ull, 100ull, 1000ull}) {
        BarrierSimulator sim(
            makeConfig(64, a, BackoffConfig::none()));
        const auto s = sim.runMany(100, 33);
        EXPECT_LT(s.accesses.cv(), 0.07) << "A=" << a;
    }
}

TEST(BarrierSim, BlockingPolicyBlocksAndCompletes)
{
    auto bo = BackoffConfig::exponentialFlag(2);
    bo.blockThreshold = 64;
    bo.blockWakeupCycles = 50;
    BarrierSimulator sim(makeConfig(16, 2000, bo));
    Rng rng(37);
    const auto res = sim.runOnce(rng);
    int blocked = 0;
    for (const auto &p : res.procs)
        blocked += p.blocked ? 1 : 0;
    EXPECT_GT(blocked, 0) << "large A should trip the threshold";
    // Blocked processors wake blockWakeupCycles after the flag set.
    for (std::uint32_t i = 0; i < res.procs.size(); ++i) {
        if (res.procs[i].blocked) {
            EXPECT_GE(res.lastExitTime,
                      res.flagSetTime + bo.blockWakeupCycles);
        }
    }
}

TEST(BarrierSim, BlockingStopsSpinAccesses)
{
    auto spin = BackoffConfig::none();
    auto block = BackoffConfig::exponentialFlag(2);
    block.blockThreshold = 32;
    const auto s_spin =
        BarrierSimulator(makeConfig(16, 4000, spin)).runMany(50, 41);
    const auto s_block =
        BarrierSimulator(makeConfig(16, 4000, block)).runMany(50, 41);
    EXPECT_LT(s_block.accesses.mean(), 0.2 * s_spin.accesses.mean());
    EXPECT_GT(s_block.blockedProcs, 0u);
}

/**
 * Property sweep: across the whole (N, A, policy) grid the paper's
 * headline claim must hold — backoff never *increases* network
 * accesses (beyond noise), and all episodes terminate.
 */
class BarrierSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t,
                                                 const char *>>
{
};

TEST_P(BarrierSweep, BackoffNeverIncreasesAccesses)
{
    const auto [n, a, preset] = GetParam();
    const auto none =
        BarrierSimulator(makeConfig(n, a, BackoffConfig::none()))
            .runMany(40, 43);
    const auto bo = BarrierSimulator(
                        makeConfig(n, a, BackoffConfig::fromString(
                                             preset)))
                        .runMany(40, 43);
    EXPECT_LE(bo.accesses.mean(), none.accesses.mean() * 1.08)
        << "N=" << n << " A=" << a << " policy=" << preset;
}

TEST_P(BarrierSweep, WaitNeverBelowSpanLowerBound)
{
    // No processor can leave before the last arrival increments the
    // variable, so the mean wait must be at least the mean residual
    // span (last arrival minus mean arrival ~ r/2) for any policy.
    const auto [n, a, preset] = GetParam();
    if (n < 4)
        return;
    const auto s = BarrierSimulator(
                       makeConfig(n, a, BackoffConfig::fromString(
                                            preset)))
                       .runMany(40, 47);
    EXPECT_GE(s.wait.mean(), s.span.mean() / 2.0 * 0.9);
}

namespace
{

std::string
sweepName(const ::testing::TestParamInfo<BarrierSweep::ParamType> &info)
{
    return "N" + std::to_string(std::get<0>(info.param)) + "_A" +
           std::to_string(std::get<1>(info.param)) + "_" +
           std::string(std::get<2>(info.param));
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Grid, BarrierSweep,
    ::testing::Combine(::testing::Values(2u, 8u, 32u, 128u),
                       ::testing::Values(0ull, 100ull, 1000ull),
                       ::testing::Values("var", "exp2", "exp4", "exp8",
                                         "lin4")),
    sweepName);

TEST(BarrierSim, ControllerBackoffCutsAccesses)
{
    // Section 8: pacing denied retries in the network controller
    // removes contention traffic software backoff cannot reach.
    auto plain = BackoffConfig::none();
    auto ctrl = BackoffConfig::none();
    ctrl.controllerBackoff = true;
    const auto s_plain =
        BarrierSimulator(makeConfig(64, 0, plain)).runMany(30, 53);
    const auto s_ctrl =
        BarrierSimulator(makeConfig(64, 0, ctrl)).runMany(30, 53);
    EXPECT_LT(s_ctrl.accesses.mean(), s_plain.accesses.mean() / 3);
}

TEST(BarrierSim, ControllerBackoffTerminatesAcrossGrid)
{
    // Regression: an earlier version starved the releasing write
    // (livelock).  Every configuration must converge.
    for (std::uint32_t n : {2u, 16u, 128u}) {
        for (std::uint64_t a : {0ull, 1000ull}) {
            auto bo = BackoffConfig::exponentialFlag(2);
            bo.controllerBackoff = true;
            const auto s = BarrierSimulator(makeConfig(n, a, bo))
                               .runMany(5, 59);
            EXPECT_GT(s.accesses.mean(), 0.0)
                << "N=" << n << " A=" << a;
        }
    }
}

TEST(BarrierSim, ControllerBackoffComposesWithFlagBackoff)
{
    auto exp2 = BackoffConfig::exponentialFlag(2);
    auto both = exp2;
    both.controllerBackoff = true;
    const auto s_exp =
        BarrierSimulator(makeConfig(64, 100, exp2)).runMany(30, 61);
    const auto s_both =
        BarrierSimulator(makeConfig(64, 100, both)).runMany(30, 61);
    EXPECT_LT(s_both.accesses.mean(), s_exp.accesses.mean());
}

TEST(BarrierSim, OneVariableBarrierCompletes)
{
    // Section 2's naive single-counter barrier: increments and polls
    // share one module.
    auto cfg = makeConfig(32, 100, BackoffConfig::none());
    cfg.singleVariable = true;
    BarrierSimulator sim(cfg);
    Rng rng(67);
    const auto res = sim.runOnce(rng);
    for (const auto &p : res.procs)
        EXPECT_GE(p.accesses, 1u);
}

TEST(BarrierSim, OneVariableSingleProcessor)
{
    auto cfg = makeConfig(1, 0, BackoffConfig::none());
    cfg.singleVariable = true;
    BarrierSimulator sim(cfg);
    Rng rng(68);
    const auto res = sim.runOnce(rng);
    EXPECT_EQ(res.procs[0].accesses, 1u) << "one F&A, no flag write";
}

TEST(BarrierSim, OneVariableCostsMoreUnderRandomArbitration)
{
    // The Section 2 argument — incrementers contending with pollers
    // on one module make the naive barrier worse — presumes unfair
    // arbitration: a random-service module lets the poller horde
    // crowd out arrivals.  (Queued service actually neutralizes the
    // problem; see bench/ext_one_variable_barrier.)
    auto one = makeConfig(64, 0, BackoffConfig::none());
    one.singleVariable = true;
    one.arbitration = absync::sim::Arbitration::Random;
    auto two = makeConfig(64, 0, BackoffConfig::none());
    two.arbitration = absync::sim::Arbitration::Random;
    const auto s_one = BarrierSimulator(one).runMany(30, 71);
    const auto s_two = BarrierSimulator(two).runMany(30, 71);
    EXPECT_GT(s_one.accesses.mean(), 1.5 * s_two.accesses.mean());
}

TEST(BarrierSim, OneVariableBackoffStillHelps)
{
    auto plain = makeConfig(32, 1000, BackoffConfig::none());
    plain.singleVariable = true;
    auto backed = makeConfig(32, 1000,
                             BackoffConfig::exponentialFlag(2));
    backed.singleVariable = true;
    const auto s_plain = BarrierSimulator(plain).runMany(30, 73);
    const auto s_backed = BarrierSimulator(backed).runMany(30, 73);
    EXPECT_LT(s_backed.accesses.mean(),
              s_plain.accesses.mean() / 5);
}

TEST(BarrierSim, OneVariableBlockingWorks)
{
    auto cfg = makeConfig(16, 3000, BackoffConfig::exponentialFlag(2));
    cfg.singleVariable = true;
    cfg.backoff.blockThreshold = 64;
    const auto s = BarrierSimulator(cfg).runMany(20, 79);
    EXPECT_GT(s.blockedProcs, 0u);
}

// ---------------------------------------------------------------------
// Fault injection (FaultPlan threaded through BarrierConfig::faults).

namespace
{

absync::support::FaultPlanConfig
faultKnobs(std::uint64_t seed)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = seed;
    return fc;
}

} // namespace

TEST(BarrierSimFaults, QuietPlanMatchesNoPlan)
{
    // A plan with every probability at zero must be a no-op.
    const absync::support::FaultPlan plan(faultKnobs(83));
    auto clean = makeConfig(32, 500, BackoffConfig::exponentialFlag(2));
    auto wired = clean;
    wired.faults = &plan;
    const auto a = BarrierSimulator(clean).runMany(20, 83);
    const auto b = BarrierSimulator(wired).runMany(20, 83);
    EXPECT_DOUBLE_EQ(a.accesses.mean(), b.accesses.mean());
    EXPECT_DOUBLE_EQ(a.wait.mean(), b.wait.mean());
    EXPECT_EQ(b.timedOutProcs, 0u);
    EXPECT_EQ(b.crashedProcs, 0u);
}

TEST(BarrierSimFaults, FaultedRunsAreDeterministic)
{
    auto fc = faultKnobs(89);
    fc.stragglerProb = 0.2;
    fc.crashProb = 0.02;
    fc.spuriousWakeProb = 0.2;
    const absync::support::FaultPlan plan(fc);
    auto cfg = makeConfig(64, 500, BackoffConfig::exponentialFlag(2));
    cfg.faults = &plan;
    cfg.timeoutCycles = 20000;
    BarrierSimulator sim(cfg);
    const auto a = sim.runMany(20, 89);
    const auto b = sim.runMany(20, 89);
    EXPECT_DOUBLE_EQ(a.accesses.mean(), b.accesses.mean());
    EXPECT_DOUBLE_EQ(a.wait.mean(), b.wait.mean());
    EXPECT_EQ(a.timedOutProcs, b.timedOutProcs);
    EXPECT_EQ(a.crashedProcs, b.crashedProcs);
}

TEST(BarrierSimFaults, CrashedEpisodeTimesOutSurvivorsNoHang)
{
    // With a crashed processor the flag never sets; bounded waiting
    // must end the episode with every survivor either timed out or
    // (having arrived before its bound) done, and the summary counts
    // must reconcile with the per-proc flags.
    auto fc = faultKnobs(97);
    fc.crashProb = 0.5; // most episodes lose someone immediately
    const absync::support::FaultPlan plan(fc);
    auto cfg = makeConfig(16, 100, BackoffConfig::none());
    cfg.faults = &plan;
    cfg.timeoutCycles = 5000;
    BarrierSimulator sim(cfg);
    Rng rng(97);
    const auto res = sim.runOnce(rng, 0);
    std::uint32_t crashed = 0;
    std::uint32_t timed_out = 0;
    for (const auto &p : res.procs) {
        crashed += p.crashed ? 1 : 0;
        timed_out += p.timedOut ? 1 : 0;
        EXPECT_FALSE(p.crashed && p.timedOut);
        if (p.timedOut) {
            EXPECT_GE(p.waitCycles, cfg.timeoutCycles);
        }
    }
    ASSERT_GT(crashed, 0u) << "seed must crash someone at episode 0";
    EXPECT_GT(timed_out, 0u);
    EXPECT_EQ(crashed + timed_out, res.procs.size());
}

TEST(BarrierSimFaults, StragglersStretchTheEpisode)
{
    auto fc = faultKnobs(101);
    fc.stragglerProb = 0.3;
    fc.stragglerMin = 2000;
    fc.stragglerMax = 4000;
    const absync::support::FaultPlan plan(fc);
    auto clean = makeConfig(32, 100, BackoffConfig::none());
    auto hurt = clean;
    hurt.faults = &plan;
    const auto a = BarrierSimulator(clean).runMany(20, 101);
    const auto b = BarrierSimulator(hurt).runMany(20, 101);
    // Late arrivals push the span and everyone else's wait up.
    EXPECT_GT(b.span.mean(), a.span.mean());
    EXPECT_GT(b.wait.mean(), a.wait.mean());
    EXPECT_EQ(b.crashedProcs, 0u);
}

TEST(BarrierSimFaults, SpuriousWakeupsCostAccesses)
{
    // A cut backoff interval means an extra (early) poll, so spurious
    // wakeups must not *decrease* traffic for a backoff policy.
    auto fc = faultKnobs(103);
    fc.spuriousWakeProb = 0.5;
    const absync::support::FaultPlan plan(fc);
    auto clean = makeConfig(32, 1000, BackoffConfig::exponentialFlag(8));
    auto hurt = clean;
    hurt.faults = &plan;
    const auto a = BarrierSimulator(clean).runMany(30, 103);
    const auto b = BarrierSimulator(hurt).runMany(30, 103);
    EXPECT_GE(b.accesses.mean(), a.accesses.mean());
}

TEST(BarrierSimFaults, ModuleStallsDelayCompletion)
{
    auto fc = faultKnobs(107);
    fc.stallProb = 0.5;
    const absync::support::FaultPlan plan(fc);
    auto clean = makeConfig(32, 0, BackoffConfig::none());
    auto hurt = clean;
    hurt.faults = &plan;
    const auto a = BarrierSimulator(clean).runMany(20, 107);
    const auto b = BarrierSimulator(hurt).runMany(20, 107);
    // Denied cycles stretch the episode end-to-end.
    EXPECT_GT(b.wait.mean(), a.wait.mean());
}
