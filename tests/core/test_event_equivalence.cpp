/**
 * @file
 * Bit-identity of the event-driven episode engines against their
 * reference cycle steppers (DESIGN.md §12).
 *
 * The event-driven runOnce in each simulator claims *exact*
 * equivalence: same seed, same EpisodeResult, down to the last
 * counter — not statistical closeness.  These tests hold it to that
 * across the full policy grid (every backoff family, arbitration
 * policy, controller backoff, queue-on-threshold, the one-variable
 * barrier, faults with bounded waiting) and across the tree and
 * resource simulators.  Engine diagnostics (cyclesSkipped /
 * eventsProcessed) are deliberately excluded: the whole point of the
 * event engine is that those differ.
 *
 * A second group proves the engines actually skip work (the episode
 * executes far fewer cycles than it spans), so a regression that
 * silently degrades the engine to stepping every cycle fails here
 * rather than only in the benchmarks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/barrier_sim.hpp"
#include "core/hierarchical_barrier_sim.hpp"
#include "core/resource_sim.hpp"
#include "core/tree_barrier_sim.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace
{

using namespace absync;

/** Everything except the engine diagnostics must match exactly. */
void
expectSameEpisode(const core::EpisodeResult &ev,
                  const core::EpisodeResult &ref,
                  const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_EQ(ev.procs.size(), ref.procs.size());
    for (std::size_t i = 0; i < ev.procs.size(); ++i) {
        SCOPED_TRACE("proc " + std::to_string(i));
        EXPECT_EQ(ev.procs[i].accesses, ref.procs[i].accesses);
        EXPECT_EQ(ev.procs[i].waitCycles, ref.procs[i].waitCycles);
        EXPECT_EQ(ev.procs[i].unsetPolls, ref.procs[i].unsetPolls);
        EXPECT_EQ(ev.procs[i].blocked, ref.procs[i].blocked);
        EXPECT_EQ(ev.procs[i].timedOut, ref.procs[i].timedOut);
        EXPECT_EQ(ev.procs[i].crashed, ref.procs[i].crashed);
    }
    EXPECT_EQ(ev.flagSetTime, ref.flagSetTime);
    EXPECT_EQ(ev.lastExitTime, ref.lastExitTime);
    EXPECT_EQ(ev.firstArrival, ref.firstArrival);
    EXPECT_EQ(ev.lastArrival, ref.lastArrival);
    EXPECT_EQ(ev.varModuleTraffic, ref.varModuleTraffic);
    EXPECT_EQ(ev.flagModuleTraffic, ref.flagModuleTraffic);
    EXPECT_TRUE(ev.counters == ref.counters);
    EXPECT_TRUE(ev.moduleHeat == ref.moduleHeat);
}

/** Run both engines over several seeds and demand identity. */
void
expectEngineEquivalence(const core::BarrierConfig &cfg,
                        const std::string &what,
                        std::uint64_t seeds = 5)
{
    core::BarrierSimulator sim(cfg);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        support::Rng ev_rng(seed);
        support::Rng ref_rng(seed);
        const auto ev = sim.runOnce(ev_rng, seed);
        const auto ref = sim.runOnceReference(ref_rng, seed);
        expectSameEpisode(ev, ref,
                          what + " seed " + std::to_string(seed));
        // Both engines must also leave their RNGs in the same state:
        // anything less means one consumed randomness the other
        // didn't, which would corrupt every later split in a sweep.
        EXPECT_EQ(ev_rng(), ref_rng()) << what << " rng divergence";
    }
}

// --- Flat barrier: the full policy grid ------------------------------

class PolicyGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, const char *, std::uint64_t>>
{
};

TEST_P(PolicyGrid, EventEngineMatchesReference)
{
    const auto [n, policy, window] = GetParam();
    core::BarrierConfig cfg;
    cfg.processors = n;
    cfg.arrivalWindow = window;
    cfg.backoff = core::BackoffConfig::fromString(policy);
    expectEngineEquivalence(cfg, std::string(policy) + " fifo");

    cfg.arbitration = sim::Arbitration::Random;
    expectEngineEquivalence(cfg, std::string(policy) + " random");

    cfg.arbitration = sim::Arbitration::RoundRobin;
    expectEngineEquivalence(cfg, std::string(policy) + " rr");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicyGrid,
    ::testing::Combine(::testing::Values(2u, 16u, 64u),
                       ::testing::Values("none", "var", "lin4",
                                         "exp2", "exp4", "exp8",
                                         "queue"),
                       ::testing::Values(std::uint64_t{0},
                                         std::uint64_t{1000})),
    [](const auto &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "_" +
               std::get<1>(info.param) + "_A" +
               std::to_string(std::get<2>(info.param));
    });

TEST(EventEquivalence, RandomizedBackoff)
{
    core::BarrierConfig cfg;
    cfg.processors = 32;
    cfg.arrivalWindow = 500;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    cfg.backoff.randomized = true;
    expectEngineEquivalence(cfg, "randomized exp2");
}

TEST(EventEquivalence, QueueOnThreshold)
{
    core::BarrierConfig cfg;
    cfg.processors = 48;
    cfg.arrivalWindow = 200;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    cfg.backoff.blockThreshold = 64;
    cfg.backoff.blockWakeupCycles = 25;
    expectEngineEquivalence(cfg, "queue-on-threshold");
}

TEST(EventEquivalence, ControllerBackoff)
{
    core::BarrierConfig cfg;
    cfg.processors = 32;
    cfg.arrivalWindow = 0; // simultaneous arrival: maximum contention
    cfg.backoff = core::BackoffConfig::none();
    cfg.backoff.controllerBackoff = true;
    expectEngineEquivalence(cfg, "controller backoff");

    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    cfg.backoff.controllerBackoff = true;
    cfg.arrivalWindow = 300;
    expectEngineEquivalence(cfg, "controller + exp2");
}

TEST(EventEquivalence, QueueWakeupWithTimeouts)
{
    // The queue-wakeup phase has its own timeout subtlety: a
    // LocalWait processor that abandons its node must be *skipped*
    // by the waker, in both engines, with identical nodesAbandoned
    // accounting.
    core::BarrierConfig cfg;
    cfg.processors = 16;
    cfg.arrivalWindow = 50;
    cfg.backoff = core::BackoffConfig::queue();
    cfg.timeoutCycles = 60; // tight: some waiters abandon mid-queue
    expectEngineEquivalence(cfg, "queue + tight timeout");
}

TEST(EventEquivalence, QueueWakeupWithFaults)
{
    support::FaultPlanConfig fcfg;
    fcfg.seed = 42;
    fcfg.stragglerProb = 0.1;
    fcfg.stragglerMin = 50;
    fcfg.stragglerMax = 400;
    fcfg.crashProb = 0.05;
    support::FaultPlan plan(fcfg);

    core::BarrierConfig cfg;
    cfg.processors = 32;
    cfg.arrivalWindow = 300;
    cfg.backoff = core::BackoffConfig::queue();
    cfg.faults = &plan;
    cfg.timeoutCycles = 5000;
    expectEngineEquivalence(cfg, "queue + faults");
}

TEST(EventEquivalence, SingleVariableBarrier)
{
    core::BarrierConfig cfg;
    cfg.processors = 24;
    cfg.arrivalWindow = 100;
    cfg.singleVariable = true;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    expectEngineEquivalence(cfg, "single variable");
}

TEST(EventEquivalence, TimeoutsWithoutFaults)
{
    core::BarrierConfig cfg;
    cfg.processors = 16;
    cfg.arrivalWindow = 50;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    // Tight enough that some processors abandon the episode.
    cfg.timeoutCycles = 120;
    expectEngineEquivalence(cfg, "tight timeout");
}

TEST(EventEquivalence, FaultPlanFullStack)
{
    support::FaultPlanConfig fcfg;
    fcfg.seed = 42;
    fcfg.stragglerProb = 0.1;
    fcfg.stragglerMin = 50;
    fcfg.stragglerMax = 400;
    fcfg.crashProb = 0.05;
    fcfg.spuriousWakeProb = 0.2;
    fcfg.stallProb = 0.02;
    support::FaultPlan plan(fcfg);

    core::BarrierConfig cfg;
    cfg.processors = 32;
    cfg.arrivalWindow = 300;
    cfg.backoff = core::BackoffConfig::exponentialFlag(4);
    cfg.faults = &plan;
    cfg.timeoutCycles = 5000;
    expectEngineEquivalence(cfg, "faults fifo");

    cfg.arbitration = sim::Arbitration::Random;
    expectEngineEquivalence(cfg, "faults random");
}

TEST(EventEquivalence, SerialRunManyFoldsLikeManualReferenceFold)
{
    core::BarrierConfig cfg;
    cfg.processors = 16;
    cfg.arrivalWindow = 400;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    core::BarrierSimulator sim(cfg);

    constexpr std::uint64_t kRuns = 12, kSeed = 7;
    const core::EpisodeSummary got = sim.runMany(kRuns, kSeed);

    // Replay the exact contract by hand: split streams in order, run
    // the *reference* engine, fold through the one accumulation path.
    core::EpisodeSummary want;
    support::Rng master(kSeed);
    for (std::uint64_t r = 0; r < kRuns; ++r) {
        support::Rng run_rng = master.split();
        want.merge(sim.runOnceReference(run_rng, r));
    }

    EXPECT_EQ(got.runs, want.runs);
    EXPECT_EQ(got.accesses.mean(), want.accesses.mean());
    EXPECT_EQ(got.accesses.variance(), want.accesses.variance());
    EXPECT_EQ(got.wait.mean(), want.wait.mean());
    EXPECT_EQ(got.wait.variance(), want.wait.variance());
    EXPECT_EQ(got.span.mean(), want.span.mean());
    EXPECT_EQ(got.setTime.mean(), want.setTime.mean());
    EXPECT_EQ(got.flagTraffic.mean(), want.flagTraffic.mean());
    EXPECT_EQ(got.blockedProcs, want.blockedProcs);
    EXPECT_EQ(got.timedOutProcs, want.timedOutProcs);
    EXPECT_EQ(got.crashedProcs, want.crashedProcs);
    EXPECT_TRUE(got.moduleHeat == want.moduleHeat);
    EXPECT_EQ(got.waitProfile.count(), want.waitProfile.count());
    EXPECT_TRUE(got.waitProfile.summary() ==
                want.waitProfile.summary());
}

// --- Hierarchical barrier: the topology grid -------------------------

void
expectHierEquivalence(const core::HierarchicalBarrierConfig &cfg,
                      const std::string &what,
                      std::uint64_t seeds = 5)
{
    core::HierarchicalBarrierSimulator sim(cfg);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        support::Rng ev_rng(seed);
        support::Rng ref_rng(seed);
        const auto ev = sim.runOnce(ev_rng, seed);
        const auto ref = sim.runOnceReference(ref_rng, seed);
        expectSameEpisode(ev, ref,
                          what + " seed " + std::to_string(seed));
        EXPECT_EQ(ev_rng(), ref_rng()) << what << " rng divergence";
    }
}

/** (N, tile size, policy): tile counts from 2 up to one-per-pair,
 *  including the degenerate single-tile and size-1-tile shapes. */
class HierGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, const char *>>
{
};

TEST_P(HierGrid, EventEngineMatchesReference)
{
    const auto [n, tile, policy] = GetParam();
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = n;
    cfg.tileSize = tile;
    cfg.arrivalWindow = 500;
    cfg.backoff = core::BackoffConfig::fromString(policy);
    expectHierEquivalence(cfg, std::string(policy) + " fifo");

    cfg.arbitration = sim::Arbitration::Random;
    expectHierEquivalence(cfg, std::string(policy) + " random");

    cfg.arbitration = sim::Arbitration::RoundRobin;
    expectHierEquivalence(cfg, std::string(policy) + " rr");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HierGrid,
    ::testing::Combine(::testing::Values(16u, 64u),
                       ::testing::Values(1u, 4u, 16u),
                       ::testing::Values("none", "var", "exp2",
                                         "exp8", "queue")),
    [](const auto &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::get<2>(info.param);
    });

TEST(HierEventEquivalence, DeepRemoteLatency)
{
    // Latency >> 1 exercises the Transit state and the wake-chain
    // pacing; both engines must agree on every in-flight hop.
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 64;
    cfg.tileSize = 8;
    cfg.localLatency = 3;
    cfg.remoteLatency = 40;
    cfg.arrivalWindow = 200;
    cfg.backoff = core::BackoffConfig::exponentialFlag(4);
    expectHierEquivalence(cfg, "deep latency exp4");

    cfg.backoff = core::BackoffConfig::queue();
    expectHierEquivalence(cfg, "deep latency queue");
}

TEST(HierEventEquivalence, RandomizedBackoff)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 32;
    cfg.tileSize = 8;
    cfg.arrivalWindow = 400;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    cfg.backoff.randomized = true;
    expectHierEquivalence(cfg, "randomized exp2");
}

TEST(HierEventEquivalence, QueueOnThreshold)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 48;
    cfg.tileSize = 16;
    cfg.remoteLatency = 12;
    cfg.arrivalWindow = 200;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    cfg.backoff.blockThreshold = 64;
    cfg.backoff.blockWakeupCycles = 25;
    expectHierEquivalence(cfg, "hier queue-on-threshold");
}

TEST(HierEventEquivalence, TimeoutsWithoutFaults)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 16;
    cfg.tileSize = 4;
    cfg.arrivalWindow = 50;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    cfg.timeoutCycles = 150; // tight: some processors abandon
    expectHierEquivalence(cfg, "hier tight timeout");

    cfg.backoff = core::BackoffConfig::queue();
    expectHierEquivalence(cfg, "hier queue tight timeout");
}

TEST(HierEventEquivalence, FaultPlanFullStack)
{
    // Stragglers, crashes, spurious wakeups, and module stalls over
    // the whole module array (global pair + every tile pair), under
    // both policy families and two arbitration schemes.
    support::FaultPlanConfig fcfg;
    fcfg.seed = 42;
    fcfg.stragglerProb = 0.1;
    fcfg.stragglerMin = 50;
    fcfg.stragglerMax = 400;
    fcfg.crashProb = 0.05;
    fcfg.spuriousWakeProb = 0.2;
    fcfg.stallProb = 0.02;
    support::FaultPlan plan(fcfg);

    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 32;
    cfg.tileSize = 8;
    cfg.remoteLatency = 6;
    cfg.arrivalWindow = 300;
    cfg.backoff = core::BackoffConfig::exponentialFlag(4);
    cfg.faults = &plan;
    cfg.timeoutCycles = 5000;
    expectHierEquivalence(cfg, "hier faults exp4");

    cfg.backoff = core::BackoffConfig::queue();
    expectHierEquivalence(cfg, "hier faults queue");

    cfg.arbitration = sim::Arbitration::Random;
    expectHierEquivalence(cfg, "hier faults queue random");
}

TEST(HierEventEquivalence, SerialRunManyFoldsLikeReferenceFold)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 32;
    cfg.tileSize = 8;
    cfg.arrivalWindow = 400;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    core::HierarchicalBarrierSimulator sim(cfg);

    constexpr std::uint64_t kRuns = 12, kSeed = 7;
    const core::EpisodeSummary got = sim.runMany(kRuns, kSeed);

    core::EpisodeSummary want;
    support::Rng master(kSeed);
    for (std::uint64_t r = 0; r < kRuns; ++r) {
        support::Rng run_rng = master.split();
        want.merge(sim.runOnceReference(run_rng, r));
    }

    EXPECT_EQ(got.runs, want.runs);
    EXPECT_EQ(got.accesses.mean(), want.accesses.mean());
    EXPECT_EQ(got.accesses.variance(), want.accesses.variance());
    EXPECT_EQ(got.wait.mean(), want.wait.mean());
    EXPECT_EQ(got.setTime.mean(), want.setTime.mean());
    EXPECT_EQ(got.flagTraffic.mean(), want.flagTraffic.mean());
    EXPECT_TRUE(got.moduleHeat == want.moduleHeat);
    EXPECT_TRUE(got.counters == want.counters);
}

TEST(HierEventSkips, BackoffSkipsMostCycles)
{
    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 256;
    cfg.tileSize = 16;
    cfg.arrivalWindow = 2000;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    core::HierarchicalBarrierSimulator sim(cfg);
    support::Rng rng(3);
    const auto res = sim.runOnce(rng);
    EXPECT_GT(res.cyclesSkipped, 0u);
    EXPECT_LT(res.eventsProcessed,
              (res.eventsProcessed + res.cyclesSkipped) / 2);
}

// --- Tree barrier ----------------------------------------------------

class TreeGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, const char *>>
{
};

TEST_P(TreeGrid, EventEngineMatchesReference)
{
    const auto [n, fan_in, policy] = GetParam();
    core::TreeBarrierConfig cfg;
    cfg.processors = n;
    cfg.fanIn = fan_in;
    cfg.arrivalWindow = 500;
    cfg.backoff = core::BackoffConfig::fromString(policy);
    core::TreeBarrierSimulator sim(cfg);

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        support::Rng ev_rng(seed);
        support::Rng ref_rng(seed);
        const auto ev = sim.runOnce(ev_rng);
        const auto ref = sim.runOnceReference(ref_rng);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(ev.accesses, ref.accesses);
        EXPECT_EQ(ev.waits, ref.waits);
        EXPECT_EQ(ev.maxModuleTraffic, ref.maxModuleTraffic);
        EXPECT_EQ(ev.rootSetTime, ref.rootSetTime);
        EXPECT_EQ(ev_rng(), ref_rng()) << "rng divergence";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TreeGrid,
    ::testing::Combine(::testing::Values(2u, 16u, 64u),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values("none", "exp2", "exp8")),
    [](const auto &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "_d" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::get<2>(info.param);
    });

TEST(TreeEventEquivalence, TiledTopologyGrid)
{
    // Topology-aware radix tree: latency > 1 introduces the Transit
    // state into the tree engines; both must stay bit-identical over
    // tile shapes and fan-ins that do and don't align with tiles,
    // under both node placements (first-descendant homing and the
    // topology-oblivious scattered placement).
    for (const std::uint32_t tile : {4u, 8u, 16u}) {
        for (const std::uint32_t fan_in : {2u, 4u, 8u}) {
            for (const bool scatter : {false, true}) {
                core::TreeBarrierConfig cfg;
                cfg.processors = 64;
                cfg.fanIn = fan_in;
                cfg.tileSize = tile;
                cfg.scatterNodes = scatter;
                cfg.localLatency = 2;
                cfg.remoteLatency = 10;
                cfg.arrivalWindow = 300;
                cfg.backoff = core::BackoffConfig::exponentialFlag(2);
                core::TreeBarrierSimulator sim(cfg);

                for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                    support::Rng ev_rng(seed);
                    support::Rng ref_rng(seed);
                    const auto ev = sim.runOnce(ev_rng);
                    const auto ref = sim.runOnceReference(ref_rng);
                    SCOPED_TRACE("tile " + std::to_string(tile) +
                                 " d " + std::to_string(fan_in) +
                                 (scatter ? " scattered" : "") +
                                 " seed " + std::to_string(seed));
                    EXPECT_EQ(ev.accesses, ref.accesses);
                    EXPECT_EQ(ev.waits, ref.waits);
                    EXPECT_EQ(ev.maxModuleTraffic,
                              ref.maxModuleTraffic);
                    EXPECT_EQ(ev.rootSetTime, ref.rootSetTime);
                    EXPECT_EQ(ev.localAccesses, ref.localAccesses);
                    EXPECT_EQ(ev.remoteAccesses, ref.remoteAccesses);
                    EXPECT_EQ(ev_rng(), ref_rng())
                        << "rng divergence";
                    // A tiled tree must actually split its traffic.
                    EXPECT_GT(ev.localAccesses, 0u);
                    EXPECT_GT(ev.remoteAccesses, 0u);
                }
            }
        }
    }
}

TEST(TreeEventEquivalence, ScatteredPlacementIsMostlyRemote)
{
    // The scattered ("flat") tree is the topology-oblivious baseline:
    // striping nodes across tiles must push the bulk of the traffic
    // across tile boundaries, where first-descendant homing keeps the
    // bulk of it local.
    core::TreeBarrierConfig cfg;
    cfg.processors = 64;
    cfg.fanIn = 4;
    cfg.tileSize = 16;
    cfg.localLatency = 2;
    cfg.remoteLatency = 10;
    cfg.arrivalWindow = 200;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);

    cfg.scatterNodes = true;
    support::Rng rng_s(5);
    const auto scattered =
        core::TreeBarrierSimulator(cfg).runOnce(rng_s);
    cfg.scatterNodes = false;
    support::Rng rng_h(5);
    const auto homed = core::TreeBarrierSimulator(cfg).runOnce(rng_h);

    EXPECT_GT(scattered.remoteAccesses, scattered.localAccesses);
    EXPECT_GT(homed.localAccesses, homed.remoteAccesses);
}

TEST(TreeEventEquivalence, FlatTreeIsAllLocal)
{
    // tileSize = 0 preserves the historical flat behaviour: every
    // access is classified local and latency stays 1.
    core::TreeBarrierConfig cfg;
    cfg.processors = 32;
    cfg.fanIn = 4;
    cfg.arrivalWindow = 200;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    core::TreeBarrierSimulator sim(cfg);
    support::Rng rng(1);
    const auto res = sim.runOnce(rng);
    EXPECT_EQ(res.remoteAccesses, 0u);
    std::uint64_t total = 0;
    for (const auto a : res.accesses)
        total += a;
    EXPECT_EQ(res.localAccesses, total);
}

TEST(TreeEventEquivalence, RandomArbitrationAndRandomizedBackoff)
{
    core::TreeBarrierConfig cfg;
    cfg.processors = 40;
    cfg.fanIn = 4;
    cfg.arrivalWindow = 300;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    cfg.backoff.randomized = true;
    cfg.arbitration = sim::Arbitration::Random;
    core::TreeBarrierSimulator sim(cfg);

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        support::Rng ev_rng(seed);
        support::Rng ref_rng(seed);
        const auto ev = sim.runOnce(ev_rng);
        const auto ref = sim.runOnceReference(ref_rng);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(ev.accesses, ref.accesses);
        EXPECT_EQ(ev.waits, ref.waits);
        EXPECT_EQ(ev.maxModuleTraffic, ref.maxModuleTraffic);
        EXPECT_EQ(ev.rootSetTime, ref.rootSetTime);
        EXPECT_EQ(ev_rng(), ref_rng()) << "rng divergence";
    }
}

// --- Resource simulator ----------------------------------------------

class ResourceGrid
    : public ::testing::TestWithParam<core::ResourceWaitPolicy>
{
};

TEST_P(ResourceGrid, EventEngineMatchesReference)
{
    core::ResourceSimConfig cfg;
    cfg.processors = 16;
    cfg.cycles = 30000;
    cfg.policy = GetParam();
    core::ResourceSimulator sim(cfg);

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        support::Rng ev_rng(seed);
        support::Rng ref_rng(seed);
        const auto ev = sim.run(ev_rng);
        const auto ref = sim.runReference(ref_rng);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(ev.acquisitions, ref.acquisitions);
        EXPECT_EQ(ev.accesses, ref.accesses);
        EXPECT_EQ(ev.accessesPerAcquisition,
                  ref.accessesPerAcquisition);
        EXPECT_EQ(ev.avgQueueingDelay, ref.avgQueueingDelay);
        EXPECT_EQ(ev.utilization, ref.utilization);
        EXPECT_EQ(ev.avgWaiters, ref.avgWaiters);
        EXPECT_EQ(ev.queueHandoffs, ref.queueHandoffs);
        EXPECT_EQ(ev_rng(), ref_rng()) << "rng divergence";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ResourceGrid,
    ::testing::Values(core::ResourceWaitPolicy::Spin,
                      core::ResourceWaitPolicy::Exponential,
                      core::ResourceWaitPolicy::Proportional,
                      core::ResourceWaitPolicy::Queue),
    [](const auto &info) {
        switch (info.param) {
          case core::ResourceWaitPolicy::Spin:
            return std::string("spin");
          case core::ResourceWaitPolicy::Exponential:
            return std::string("exp");
          case core::ResourceWaitPolicy::Queue:
            return std::string("queue");
          default:
            return std::string("prop");
        }
    });

TEST(ResourceEventEquivalence, RandomArbitration)
{
    core::ResourceSimConfig cfg;
    cfg.processors = 8;
    cfg.cycles = 20000;
    cfg.policy = core::ResourceWaitPolicy::Exponential;
    cfg.arbitration = sim::Arbitration::Random;
    core::ResourceSimulator sim(cfg);

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        support::Rng ev_rng(seed);
        support::Rng ref_rng(seed);
        const auto ev = sim.run(ev_rng);
        const auto ref = sim.runReference(ref_rng);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(ev.acquisitions, ref.acquisitions);
        EXPECT_EQ(ev.accesses, ref.accesses);
        EXPECT_EQ(ev.utilization, ref.utilization);
        EXPECT_EQ(ev_rng(), ref_rng()) << "rng divergence";
    }
}

// --- The engine must actually skip -----------------------------------

TEST(EventEngineSkips, ExponentialBackoffSkipsMostCycles)
{
    core::BarrierConfig cfg;
    cfg.processors = 64;
    cfg.arrivalWindow = 1000;
    cfg.backoff = core::BackoffConfig::exponentialFlag(8);
    core::BarrierSimulator sim(cfg);
    support::Rng rng(3);
    const auto res = sim.runOnce(rng);
    EXPECT_GT(res.cyclesSkipped, 0u);
    // With exp-8 backoff the episode is overwhelmingly idle: demand
    // the engine executes well under half the spanned cycles.
    EXPECT_LT(res.eventsProcessed,
              (res.eventsProcessed + res.cyclesSkipped) / 2);
}

TEST(EventEngineSkips, ResourceThinkTimeSkips)
{
    core::ResourceSimConfig cfg;
    cfg.processors = 4;
    cfg.cycles = 100000;
    cfg.meanThink = 5000.0;
    core::ResourceSimulator sim(cfg);
    support::Rng rng(5);
    const auto st = sim.run(rng);
    EXPECT_GT(st.cyclesSkipped, 0u);
    EXPECT_EQ(st.cyclesSkipped + st.eventsProcessed, cfg.cycles);
    EXPECT_LT(st.eventsProcessed, cfg.cycles / 2);
}

TEST(EventEngineSkips, BusyPollingSkipsNothing)
{
    // No backoff + simultaneous arrival: every cycle has requesters,
    // so the event engine must degenerate to the stepper exactly.
    core::BarrierConfig cfg;
    cfg.processors = 8;
    cfg.backoff = core::BackoffConfig::none();
    core::BarrierSimulator sim(cfg);
    support::Rng rng(11);
    const auto res = sim.runOnce(rng);
    EXPECT_EQ(res.cyclesSkipped, 0u);
}

} // namespace
