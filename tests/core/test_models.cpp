/** @file Unit tests for the Section 5.1 analytical models. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"

using namespace absync::core;

TEST(Models, ExpectedSpanFormula)
{
    // r = A (N-1)/(N+1), Eq. (1).
    EXPECT_DOUBLE_EQ(expectedSpan(1000.0, 3), 1000.0 * 2.0 / 4.0);
    EXPECT_DOUBLE_EQ(expectedSpan(100.0, 1), 0.0);
    EXPECT_DOUBLE_EQ(expectedSpan(0.0, 64), 0.0);
}

TEST(Models, ExpectedSpanApproachesAForLargeN)
{
    EXPECT_NEAR(expectedSpan(1000.0, 1000), 1000.0, 2.1);
    EXPECT_LT(expectedSpan(1000.0, 1000), 1000.0);
}

TEST(Models, Model1IsFiveHalvesN)
{
    EXPECT_DOUBLE_EQ(model1Accesses(64), 160.0);
    EXPECT_DOUBLE_EQ(model1Accesses(2), 5.0);
}

TEST(Models, Model2Formula)
{
    const double r = expectedSpan(1000.0, 16);
    EXPECT_DOUBLE_EQ(model2Accesses(1000.0, 16), r / 2.0 + 24.0);
}

TEST(Models, CombinedIsMaxOfBoth)
{
    // Small A, large N -> Model 1 dominates.
    EXPECT_DOUBLE_EQ(modelAccesses(0.0, 128), model1Accesses(128));
    // Large A, small N -> Model 2 dominates.
    EXPECT_DOUBLE_EQ(modelAccesses(10000.0, 4),
                     model2Accesses(10000.0, 4));
}

TEST(Models, VariableBackoffSavesHalfN)
{
    EXPECT_DOUBLE_EQ(model1VariableBackoffAccesses(64), 128.0);
    EXPECT_DOUBLE_EQ(model1Accesses(64) -
                         model1VariableBackoffAccesses(64),
                     32.0);
}

TEST(Models, Model1SavingIsTwentyPercent)
{
    // The paper's "potential reduction ... is 20%" for N > A.
    const double save = 1.0 - model1VariableBackoffAccesses(256) /
                                  model1Accesses(256);
    EXPECT_NEAR(save, 0.20, 1e-12);
}

TEST(Models, ExponentialCollapsesPollTerm)
{
    const double plain = model2Accesses(1000.0, 16);
    const double exp2 = model2ExponentialAccesses(1000.0, 16, 2.0);
    EXPECT_LT(exp2, plain);
    // The poll term should be ~log2(r/2).
    const double r = expectedSpan(1000.0, 16);
    EXPECT_NEAR(exp2 - 1.5 * 16, std::log2(r / 2.0), 1e-9);
}

TEST(Models, HardwareSchemeCosts)
{
    EXPECT_DOUBLE_EQ(
        hardwareAccessesPerProc(HardwareScheme::InvalidatingBus), 3.0);
    EXPECT_DOUBLE_EQ(
        hardwareAccessesPerProc(HardwareScheme::UpdatingBus), 2.0);
    EXPECT_DOUBLE_EQ(hardwareAccessesPerProc(HardwareScheme::Directory),
                     4.0);
    EXPECT_DOUBLE_EQ(
        hardwareAccessesPerProc(HardwareScheme::HoshinoGate), 1.0);
}

TEST(Models, HardwareSchemeNames)
{
    EXPECT_EQ(hardwareSchemeName(HardwareScheme::HoshinoGate),
              "Hoshino sync gate");
    EXPECT_FALSE(
        hardwareSchemeName(HardwareScheme::Directory).empty());
}
