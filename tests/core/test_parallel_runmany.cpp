/**
 * @file
 * Parallel runMany must be *bitwise* identical to serial runMany.
 *
 * The engines promise that `jobs` is a pure throughput knob: RNG
 * streams are pre-split serially in episode order and results are
 * folded through the single merge path in episode order, so the
 * summary for jobs = 8 is the same bytes as for jobs = 1.  These
 * tests compare every field — including floating-point means and
 * variances with EXPECT_EQ, not EXPECT_NEAR, because "close" would
 * mean the fold order leaked.  The TSan CI job runs this binary to
 * check the claim is also race-free.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/barrier_sim.hpp"
#include "core/hierarchical_barrier_sim.hpp"
#include "core/resource_sim.hpp"
#include "core/tree_barrier_sim.hpp"
#include "support/fault.hpp"
#include "support/stats.hpp"

namespace
{

using namespace absync;

void
expectSameStats(const support::RunningStats &a,
                const support::RunningStats &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.minimum(), b.minimum());
    EXPECT_EQ(a.maximum(), b.maximum());
}

class BarrierJobs : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BarrierJobs, SummaryBitwiseEqualToSerial)
{
    const unsigned jobs = GetParam();

    support::FaultPlanConfig fcfg;
    fcfg.seed = 9;
    fcfg.stragglerProb = 0.05;
    fcfg.crashProb = 0.02;
    fcfg.spuriousWakeProb = 0.1;
    support::FaultPlan plan(fcfg);

    core::BarrierConfig cfg;
    cfg.processors = 32;
    cfg.arrivalWindow = 500;
    cfg.backoff = core::BackoffConfig::exponentialFlag(4);
    cfg.faults = &plan; // exercises the per-episode schedule indexing
    cfg.timeoutCycles = 5000;
    core::BarrierSimulator sim(cfg);

    constexpr std::uint64_t kRuns = 24, kSeed = 123;
    const core::EpisodeSummary serial = sim.runMany(kRuns, kSeed, 1);
    const core::EpisodeSummary par = sim.runMany(kRuns, kSeed, jobs);

    EXPECT_EQ(par.runs, serial.runs);
    expectSameStats(par.accesses, serial.accesses, "accesses");
    expectSameStats(par.wait, serial.wait, "wait");
    expectSameStats(par.span, serial.span, "span");
    expectSameStats(par.setTime, serial.setTime, "setTime");
    expectSameStats(par.flagTraffic, serial.flagTraffic, "flagTraffic");
    EXPECT_EQ(par.blockedProcs, serial.blockedProcs);
    EXPECT_EQ(par.timedOutProcs, serial.timedOutProcs);
    EXPECT_EQ(par.crashedProcs, serial.crashedProcs);
    EXPECT_TRUE(par.moduleHeat == serial.moduleHeat);
    EXPECT_EQ(par.waitProfile.count(), serial.waitProfile.count());
    EXPECT_TRUE(par.waitProfile.summary() ==
                serial.waitProfile.summary());
    // Even the engine diagnostics match: the same episodes ran.
    EXPECT_EQ(par.cyclesSkipped, serial.cyclesSkipped);
    EXPECT_EQ(par.eventsProcessed, serial.eventsProcessed);
}

INSTANTIATE_TEST_SUITE_P(Jobs, BarrierJobs,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto &info) {
                             return "J" + std::to_string(info.param);
                         });

class TreeJobs : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TreeJobs, SummaryBitwiseEqualToSerial)
{
    const unsigned jobs = GetParam();

    core::TreeBarrierConfig cfg;
    cfg.processors = 64;
    cfg.fanIn = 4;
    cfg.arrivalWindow = 400;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    core::TreeBarrierSimulator sim(cfg);

    constexpr std::uint64_t kRuns = 24, kSeed = 321;
    const core::TreeEpisodeSummary serial =
        sim.runMany(kRuns, kSeed, 1);
    const core::TreeEpisodeSummary par =
        sim.runMany(kRuns, kSeed, jobs);

    EXPECT_EQ(par.runs, serial.runs);
    expectSameStats(par.accesses, serial.accesses, "accesses");
    expectSameStats(par.wait, serial.wait, "wait");
    expectSameStats(par.maxModuleTraffic, serial.maxModuleTraffic,
                    "maxModuleTraffic");
    EXPECT_EQ(par.cyclesSkipped, serial.cyclesSkipped);
    EXPECT_EQ(par.eventsProcessed, serial.eventsProcessed);
}

INSTANTIATE_TEST_SUITE_P(Jobs, TreeJobs,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto &info) {
                             return "J" + std::to_string(info.param);
                         });

class HierJobs : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HierJobs, SummaryBitwiseEqualToSerial)
{
    const unsigned jobs = GetParam();

    support::FaultPlanConfig fcfg;
    fcfg.seed = 9;
    fcfg.stragglerProb = 0.05;
    fcfg.crashProb = 0.02;
    fcfg.spuriousWakeProb = 0.1;
    support::FaultPlan plan(fcfg);

    core::HierarchicalBarrierConfig cfg;
    cfg.processors = 32;
    cfg.tileSize = 8;
    cfg.remoteLatency = 6;
    cfg.arrivalWindow = 500;
    cfg.backoff = core::BackoffConfig::exponentialFlag(4);
    cfg.faults = &plan;
    cfg.timeoutCycles = 5000;
    core::HierarchicalBarrierSimulator sim(cfg);

    constexpr std::uint64_t kRuns = 24, kSeed = 123;
    const core::EpisodeSummary serial = sim.runMany(kRuns, kSeed, 1);
    const core::EpisodeSummary par = sim.runMany(kRuns, kSeed, jobs);

    EXPECT_EQ(par.runs, serial.runs);
    expectSameStats(par.accesses, serial.accesses, "accesses");
    expectSameStats(par.wait, serial.wait, "wait");
    expectSameStats(par.span, serial.span, "span");
    expectSameStats(par.setTime, serial.setTime, "setTime");
    expectSameStats(par.flagTraffic, serial.flagTraffic,
                    "flagTraffic");
    EXPECT_EQ(par.timedOutProcs, serial.timedOutProcs);
    EXPECT_EQ(par.crashedProcs, serial.crashedProcs);
    EXPECT_TRUE(par.moduleHeat == serial.moduleHeat);
    // The topology split must fold identically too: local/remote
    // access totals are part of the deterministic contract.
    EXPECT_TRUE(par.counters == serial.counters);
    EXPECT_EQ(par.cyclesSkipped, serial.cyclesSkipped);
    EXPECT_EQ(par.eventsProcessed, serial.eventsProcessed);
}

INSTANTIATE_TEST_SUITE_P(Jobs, HierJobs,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto &info) {
                             return "J" + std::to_string(info.param);
                         });

class ResourceJobs : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ResourceJobs, StatsBitwiseEqualToSerial)
{
    const unsigned jobs = GetParam();

    core::ResourceSimConfig cfg;
    cfg.processors = 16;
    cfg.cycles = 20000;
    cfg.policy = core::ResourceWaitPolicy::Proportional;
    core::ResourceSimulator sim(cfg);

    constexpr std::uint64_t kRuns = 24, kSeed = 77;
    const core::ResourceSimStats serial =
        sim.runMany(kRuns, kSeed, 1);
    const core::ResourceSimStats par =
        sim.runMany(kRuns, kSeed, jobs);

    EXPECT_EQ(par.acquisitions, serial.acquisitions);
    EXPECT_EQ(par.accesses, serial.accesses);
    EXPECT_EQ(par.accessesPerAcquisition,
              serial.accessesPerAcquisition);
    EXPECT_EQ(par.avgQueueingDelay, serial.avgQueueingDelay);
    EXPECT_EQ(par.utilization, serial.utilization);
    EXPECT_EQ(par.avgWaiters, serial.avgWaiters);
    EXPECT_EQ(par.cyclesSkipped, serial.cyclesSkipped);
    EXPECT_EQ(par.eventsProcessed, serial.eventsProcessed);
}

INSTANTIATE_TEST_SUITE_P(Jobs, ResourceJobs,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto &info) {
                             return "J" + std::to_string(info.param);
                         });

TEST(ParallelRunMany, JobsZeroMeansHardware)
{
    // jobs = 0 resolves to the hardware thread count; whatever that
    // is, the summary must still match serial exactly.
    core::BarrierConfig cfg;
    cfg.processors = 16;
    cfg.arrivalWindow = 200;
    cfg.backoff = core::BackoffConfig::exponentialFlag(2);
    core::BarrierSimulator sim(cfg);

    const auto serial = sim.runMany(10, 5, 1);
    const auto par = sim.runMany(10, 5, 0);
    EXPECT_EQ(par.runs, serial.runs);
    expectSameStats(par.accesses, serial.accesses, "accesses");
    expectSameStats(par.wait, serial.wait, "wait");
    EXPECT_EQ(par.eventsProcessed, serial.eventsProcessed);
}

} // namespace
