/** @file Unit and property tests for the resource-wait simulator. */

#include <gtest/gtest.h>

#include "core/resource_sim.hpp"

using namespace absync::core;
using absync::support::Rng;

namespace
{

ResourceSimConfig
makeCfg(std::uint32_t n, ResourceWaitPolicy policy,
        std::uint64_t cycles = 50000)
{
    ResourceSimConfig cfg;
    cfg.processors = n;
    cfg.policy = policy;
    cfg.cycles = cycles;
    return cfg;
}

} // namespace

TEST(ResourceSim, SingleProcessorNoContention)
{
    ResourceSimulator sim(makeCfg(1, ResourceWaitPolicy::Spin));
    Rng rng(1);
    const auto st = sim.run(rng);
    EXPECT_GT(st.acquisitions, 10u);
    // Alone, every acquisition is a single successful access.
    EXPECT_NEAR(st.accessesPerAcquisition, 1.0, 0.01);
    EXPECT_NEAR(st.avgQueueingDelay, 0.0, 0.01);
}

TEST(ResourceSim, UtilizationMatchesOfferedLoad)
{
    // One processor: utilization ~ hold / (hold + think + 1).
    ResourceSimConfig cfg = makeCfg(1, ResourceWaitPolicy::Spin);
    cfg.holdCycles = 100;
    cfg.meanThink = 100.0;
    ResourceSimulator sim(cfg);
    Rng rng(2);
    const auto st = sim.run(rng);
    EXPECT_NEAR(st.utilization, 0.5, 0.05);
}

TEST(ResourceSim, DeterministicForSeed)
{
    ResourceSimulator sim(
        makeCfg(8, ResourceWaitPolicy::Proportional));
    const auto a = sim.runMany(3, 77);
    const auto b = sim.runMany(3, 77);
    EXPECT_EQ(a.acquisitions, b.acquisitions);
    EXPECT_DOUBLE_EQ(a.accessesPerAcquisition,
                     b.accessesPerAcquisition);
}

TEST(ResourceSim, SpinAccessesGrowWithContention)
{
    Rng unused(0);
    const auto lo =
        ResourceSimulator(makeCfg(2, ResourceWaitPolicy::Spin))
            .runMany(3, 5);
    const auto hi =
        ResourceSimulator(makeCfg(32, ResourceWaitPolicy::Spin))
            .runMany(3, 5);
    EXPECT_GT(hi.accessesPerAcquisition,
              4.0 * lo.accessesPerAcquisition);
}

TEST(ResourceSim, ProportionalStaysNearConstantAccesses)
{
    // The Section 8 claim: the waiter count predicts the wait, so
    // accesses per acquisition stay O(1) across contention levels.
    const auto lo =
        ResourceSimulator(
            makeCfg(2, ResourceWaitPolicy::Proportional))
            .runMany(3, 7);
    const auto hi =
        ResourceSimulator(
            makeCfg(32, ResourceWaitPolicy::Proportional))
            .runMany(3, 7);
    EXPECT_LT(lo.accessesPerAcquisition, 4.0);
    EXPECT_LT(hi.accessesPerAcquisition, 6.0);
}

TEST(ResourceSim, BackoffBeatsSpinOnAccessesUnderContention)
{
    for (auto policy : {ResourceWaitPolicy::Exponential,
                        ResourceWaitPolicy::Proportional}) {
        const auto spin =
            ResourceSimulator(makeCfg(16, ResourceWaitPolicy::Spin))
                .runMany(3, 9);
        const auto bo =
            ResourceSimulator(makeCfg(16, policy)).runMany(3, 9);
        EXPECT_LT(bo.accessesPerAcquisition,
                  spin.accessesPerAcquisition / 5.0)
            << resourceWaitPolicyName(policy);
    }
}

TEST(ResourceSim, ThroughputComparableAtModerateContention)
{
    // Backoff must not tank utilization when the resource is not
    // saturated.
    const auto spin =
        ResourceSimulator(makeCfg(8, ResourceWaitPolicy::Spin))
            .runMany(3, 11);
    const auto prop =
        ResourceSimulator(
            makeCfg(8, ResourceWaitPolicy::Proportional))
            .runMany(3, 11);
    EXPECT_GT(prop.utilization, spin.utilization * 0.9);
}

TEST(ResourceSim, PolicyNamesRoundTrip)
{
    EXPECT_EQ(resourceWaitPolicyFromString("spin"),
              ResourceWaitPolicy::Spin);
    EXPECT_EQ(resourceWaitPolicyFromString("exp"),
              ResourceWaitPolicy::Exponential);
    EXPECT_EQ(resourceWaitPolicyFromString("prop"),
              ResourceWaitPolicy::Proportional);
    for (auto p : {ResourceWaitPolicy::Spin,
                   ResourceWaitPolicy::Exponential,
                   ResourceWaitPolicy::Proportional}) {
        EXPECT_FALSE(resourceWaitPolicyName(p).empty());
    }
}
