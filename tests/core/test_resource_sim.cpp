/** @file Unit and property tests for the resource-wait simulator. */

#include <gtest/gtest.h>

#include "core/resource_sim.hpp"

using namespace absync::core;
using absync::support::Rng;

namespace
{

ResourceSimConfig
makeCfg(std::uint32_t n, ResourceWaitPolicy policy,
        std::uint64_t cycles = 50000)
{
    ResourceSimConfig cfg;
    cfg.processors = n;
    cfg.policy = policy;
    cfg.cycles = cycles;
    return cfg;
}

} // namespace

TEST(ResourceSim, SingleProcessorNoContention)
{
    ResourceSimulator sim(makeCfg(1, ResourceWaitPolicy::Spin));
    Rng rng(1);
    const auto st = sim.run(rng);
    EXPECT_GT(st.acquisitions, 10u);
    // Alone, every acquisition is a single successful access.
    EXPECT_NEAR(st.accessesPerAcquisition, 1.0, 0.01);
    EXPECT_NEAR(st.avgQueueingDelay, 0.0, 0.01);
}

TEST(ResourceSim, UtilizationMatchesOfferedLoad)
{
    // One processor: utilization ~ hold / (hold + think + 1).
    ResourceSimConfig cfg = makeCfg(1, ResourceWaitPolicy::Spin);
    cfg.holdCycles = 100;
    cfg.meanThink = 100.0;
    ResourceSimulator sim(cfg);
    Rng rng(2);
    const auto st = sim.run(rng);
    EXPECT_NEAR(st.utilization, 0.5, 0.05);
}

TEST(ResourceSim, DeterministicForSeed)
{
    ResourceSimulator sim(
        makeCfg(8, ResourceWaitPolicy::Proportional));
    const auto a = sim.runMany(3, 77);
    const auto b = sim.runMany(3, 77);
    EXPECT_EQ(a.acquisitions, b.acquisitions);
    EXPECT_DOUBLE_EQ(a.accessesPerAcquisition,
                     b.accessesPerAcquisition);
}

TEST(ResourceSim, SpinAccessesGrowWithContention)
{
    Rng unused(0);
    const auto lo =
        ResourceSimulator(makeCfg(2, ResourceWaitPolicy::Spin))
            .runMany(3, 5);
    const auto hi =
        ResourceSimulator(makeCfg(32, ResourceWaitPolicy::Spin))
            .runMany(3, 5);
    EXPECT_GT(hi.accessesPerAcquisition,
              4.0 * lo.accessesPerAcquisition);
}

TEST(ResourceSim, ProportionalStaysNearConstantAccesses)
{
    // The Section 8 claim: the waiter count predicts the wait, so
    // accesses per acquisition stay O(1) across contention levels.
    const auto lo =
        ResourceSimulator(
            makeCfg(2, ResourceWaitPolicy::Proportional))
            .runMany(3, 7);
    const auto hi =
        ResourceSimulator(
            makeCfg(32, ResourceWaitPolicy::Proportional))
            .runMany(3, 7);
    EXPECT_LT(lo.accessesPerAcquisition, 4.0);
    EXPECT_LT(hi.accessesPerAcquisition, 6.0);
}

TEST(ResourceSim, BackoffBeatsSpinOnAccessesUnderContention)
{
    for (auto policy : {ResourceWaitPolicy::Exponential,
                        ResourceWaitPolicy::Proportional}) {
        const auto spin =
            ResourceSimulator(makeCfg(16, ResourceWaitPolicy::Spin))
                .runMany(3, 9);
        const auto bo =
            ResourceSimulator(makeCfg(16, policy)).runMany(3, 9);
        EXPECT_LT(bo.accessesPerAcquisition,
                  spin.accessesPerAcquisition / 5.0)
            << resourceWaitPolicyName(policy);
    }
}

TEST(ResourceSim, ThroughputComparableAtModerateContention)
{
    // Backoff must not tank utilization when the resource is not
    // saturated.
    const auto spin =
        ResourceSimulator(makeCfg(8, ResourceWaitPolicy::Spin))
            .runMany(3, 11);
    const auto prop =
        ResourceSimulator(
            makeCfg(8, ResourceWaitPolicy::Proportional))
            .runMany(3, 11);
    EXPECT_GT(prop.utilization, spin.utilization * 0.9);
}

TEST(ResourceSim, QueueAccessesStayFlatUnderContention)
{
    // The queue policy's whole point: one enqueue poll plus one
    // handoff write per acquisition, independent of contention — the
    // O(1) floor even the proportional policy can only approximate.
    const auto lo =
        ResourceSimulator(makeCfg(2, ResourceWaitPolicy::Queue))
            .runMany(3, 13);
    const auto hi =
        ResourceSimulator(makeCfg(32, ResourceWaitPolicy::Queue))
            .runMany(3, 13);
    EXPECT_LT(lo.accessesPerAcquisition, 2.5);
    EXPECT_LT(hi.accessesPerAcquisition, 2.5);

    const auto prop =
        ResourceSimulator(
            makeCfg(32, ResourceWaitPolicy::Proportional))
            .runMany(3, 13);
    EXPECT_LE(hi.accessesPerAcquisition,
              prop.accessesPerAcquisition);
}

TEST(ResourceSim, QueueHandsOffWithoutIdleGaps)
{
    // Under saturation every release hands the resource straight to
    // the queue head, so utilization approaches 1 and nearly every
    // acquisition is a handoff rather than an open race.
    ResourceSimConfig cfg = makeCfg(16, ResourceWaitPolicy::Queue);
    cfg.meanThink = 100.0; // much shorter than 16 * holdCycles
    const auto st = ResourceSimulator(cfg).runMany(3, 15);
    EXPECT_GT(st.utilization, 0.95);
    EXPECT_GT(st.queueHandoffs,
              st.acquisitions - st.acquisitions / 10);
    // FIFO service keeps the delay near (waiters ahead) * hold.
    EXPECT_GT(st.avgWaiters, 5.0);
    const double expected_delay = st.avgWaiters * cfg.holdCycles;
    EXPECT_NEAR(st.avgQueueingDelay, expected_delay,
                0.35 * expected_delay);
}

TEST(ResourceSim, QueueHandoffsZeroWithoutContention)
{
    const auto st =
        ResourceSimulator(makeCfg(1, ResourceWaitPolicy::Queue))
            .runMany(3, 17);
    EXPECT_EQ(st.queueHandoffs, 0u);
    EXPECT_NEAR(st.accessesPerAcquisition, 1.0, 0.01);
}

TEST(ResourceSim, PolicyNamesRoundTrip)
{
    EXPECT_EQ(resourceWaitPolicyFromString("spin"),
              ResourceWaitPolicy::Spin);
    EXPECT_EQ(resourceWaitPolicyFromString("exp"),
              ResourceWaitPolicy::Exponential);
    EXPECT_EQ(resourceWaitPolicyFromString("prop"),
              ResourceWaitPolicy::Proportional);
    EXPECT_EQ(resourceWaitPolicyFromString("queue"),
              ResourceWaitPolicy::Queue);
    for (auto p : {ResourceWaitPolicy::Spin,
                   ResourceWaitPolicy::Exponential,
                   ResourceWaitPolicy::Proportional,
                   ResourceWaitPolicy::Queue}) {
        EXPECT_FALSE(resourceWaitPolicyName(p).empty());
    }
}
