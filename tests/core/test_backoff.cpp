/** @file Unit tests for the backoff policy configuration. */

#include <gtest/gtest.h>

#include "core/backoff.hpp"

using absync::core::BackoffConfig;
using absync::core::FlagBackoff;

TEST(Backoff, DefaultIsNoBackoff)
{
    BackoffConfig c;
    EXPECT_FALSE(c.onVariable);
    EXPECT_EQ(c.onFlag, FlagBackoff::None);
    EXPECT_EQ(c.variableDelay(64, 1), 0u);
    EXPECT_EQ(c.flagDelay(5), 0u);
}

TEST(Backoff, VariableDelayIsNMinusI)
{
    auto c = BackoffConfig::variableOnly();
    EXPECT_EQ(c.variableDelay(64, 1), 63u);
    EXPECT_EQ(c.variableDelay(64, 32), 32u);
    EXPECT_EQ(c.variableDelay(64, 63), 1u);
    EXPECT_EQ(c.variableDelay(64, 64), 0u) << "last arriver waits 0";
}

TEST(Backoff, VariableDelayScaled)
{
    auto c = BackoffConfig::variableOnly();
    c.varScale = 2.0;
    EXPECT_EQ(c.variableDelay(10, 6), 8u); // 2*(10-6)
    c.varScale = 1.0;
    c.varOffset = 5;
    EXPECT_EQ(c.variableDelay(10, 6), 9u); // (10-6)+5
}

TEST(Backoff, LinearFlagDelay)
{
    auto c = BackoffConfig::linearFlag(3);
    EXPECT_EQ(c.flagDelay(1), 3u);
    EXPECT_EQ(c.flagDelay(2), 6u);
    EXPECT_EQ(c.flagDelay(10), 30u);
}

TEST(Backoff, ExponentialFlagDelay)
{
    auto c = BackoffConfig::exponentialFlag(2);
    EXPECT_EQ(c.flagDelay(1), 2u);
    EXPECT_EQ(c.flagDelay(2), 4u);
    EXPECT_EQ(c.flagDelay(3), 8u);
    EXPECT_EQ(c.flagDelay(10), 1024u);

    auto c8 = BackoffConfig::exponentialFlag(8);
    EXPECT_EQ(c8.flagDelay(1), 8u);
    EXPECT_EQ(c8.flagDelay(2), 64u);
    EXPECT_EQ(c8.flagDelay(3), 512u);
}

TEST(Backoff, ExponentialClampsAtMaxExponent)
{
    auto c = BackoffConfig::exponentialFlag(2);
    c.maxExponent = 4;
    EXPECT_EQ(c.flagDelay(4), 16u);
    EXPECT_EQ(c.flagDelay(100), 16u);
}

TEST(Backoff, ExponentialNoOverflow)
{
    auto c = BackoffConfig::exponentialFlag(8);
    c.maxExponent = 64;
    // Must clamp instead of overflowing.
    EXPECT_LE(c.flagDelay(63), 1ULL << 62);
    EXPECT_GT(c.flagDelay(63), 0u);
}

TEST(Backoff, DegenerateBaseOneIsLinearish)
{
    auto c = BackoffConfig::exponentialFlag(1);
    EXPECT_EQ(c.flagDelay(5), 5u);
}

TEST(Backoff, BlockThreshold)
{
    auto c = BackoffConfig::exponentialFlag(2);
    c.blockThreshold = 100;
    EXPECT_FALSE(c.shouldBlock(100));
    EXPECT_TRUE(c.shouldBlock(101));
    c.blockThreshold = 0;
    EXPECT_FALSE(c.shouldBlock(1ULL << 40));
}

TEST(Backoff, PresetsFromString)
{
    EXPECT_FALSE(BackoffConfig::fromString("none").onVariable);
    EXPECT_TRUE(BackoffConfig::fromString("var").onVariable);

    auto e4 = BackoffConfig::fromString("exp4");
    EXPECT_EQ(e4.onFlag, FlagBackoff::Exponential);
    EXPECT_EQ(e4.flagBase, 4u);
    EXPECT_TRUE(e4.onVariable) << "paper: flag backoff implies "
                                  "variable backoff";

    auto l2 = BackoffConfig::fromString("lin2");
    EXPECT_EQ(l2.onFlag, FlagBackoff::Linear);
    EXPECT_EQ(l2.flagBase, 2u);
}

TEST(Backoff, NamesAreDescriptive)
{
    EXPECT_EQ(BackoffConfig::none().name(), "none");
    EXPECT_EQ(BackoffConfig::variableOnly().name(), "var");
    EXPECT_EQ(BackoffConfig::exponentialFlag(8).name(),
              "var+flag(exp,b=8)");
    auto c = BackoffConfig::exponentialFlag(2);
    c.blockThreshold = 64;
    EXPECT_NE(c.name().find("block@64"), std::string::npos);
}

TEST(Backoff, ControllerWindowGrowth)
{
    BackoffConfig c;
    EXPECT_EQ(c.controllerWindow(5), 0u) << "disabled by default";
    c.controllerBackoff = true;
    EXPECT_EQ(c.controllerWindow(0), 0u);
    EXPECT_EQ(c.controllerWindow(1), 2u);
    EXPECT_EQ(c.controllerWindow(3), 8u);
    c.controllerMaxExponent = 4;
    EXPECT_EQ(c.controllerWindow(100), 16u) << "clamped";
}

TEST(Backoff, ControllerWindowDegenerateBase)
{
    BackoffConfig c;
    c.controllerBackoff = true;
    c.controllerBase = 1;
    EXPECT_EQ(c.controllerWindow(7), 7u);
}

TEST(Backoff, AdaptiveFlagDelayClampsAtCap)
{
    auto c = BackoffConfig::adaptive(16, 2);
    EXPECT_EQ(c.onFlag, FlagBackoff::Adaptive);
    EXPECT_TRUE(c.onVariable);
    EXPECT_EQ(c.flagDelay(1), 2u);
    EXPECT_EQ(c.flagDelay(2), 4u);
    EXPECT_EQ(c.flagDelay(3), 8u);
    EXPECT_EQ(c.flagDelay(4), 16u);
    EXPECT_EQ(c.flagDelay(5), 16u) << "clamped at the cap";
    EXPECT_EQ(c.flagDelay(~0ull), 16u) << "no shift/multiply wrap";
}

TEST(Backoff, AdaptiveCapIsTheRetuneKnob)
{
    // Identical poll counts, different caps: the cap alone moves the
    // schedule, which is exactly what the between-episode retuner
    // adjusts.
    auto narrow = BackoffConfig::adaptive(8, 2);
    auto wide = BackoffConfig::adaptive(1024, 2);
    EXPECT_EQ(narrow.flagDelay(6), 8u);
    EXPECT_EQ(wide.flagDelay(6), 64u);
    // Degenerate: a zero cap normalizes to 1, a base-1 schedule is
    // linear under the cap.
    auto zero = BackoffConfig::adaptive(0, 2);
    EXPECT_EQ(zero.flagDelay(50), 1u);
    auto b1 = BackoffConfig::adaptive(16, 1);
    EXPECT_EQ(b1.flagDelay(5), 5u);
    EXPECT_EQ(b1.flagDelay(50), 16u);
}

TEST(Backoff, AdaptivePresetAndName)
{
    auto c = BackoffConfig::fromString("adaptive");
    EXPECT_EQ(c.onFlag, FlagBackoff::Adaptive);
    EXPECT_EQ(c.name(),
              "var+flag(adaptive,b=2,cap=4096)");
    EXPECT_FALSE(c.shouldBlock(c.flagDelay(64))) << "no threshold set";
    c.blockThreshold = 100;
    c.adaptiveCap = 4096;
    EXPECT_TRUE(c.shouldBlock(c.flagDelay(64)))
        << "queue-on-threshold still composes with the adaptive cap";
}
