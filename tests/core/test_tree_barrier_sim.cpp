/** @file Unit, integration, and property tests for the combining-tree
 *        barrier simulator. */

#include <gtest/gtest.h>

#include <tuple>

#include "core/barrier_sim.hpp"
#include "core/tree_barrier_sim.hpp"

using namespace absync::core;
using absync::support::Rng;

namespace
{

TreeBarrierConfig
treeConfig(std::uint32_t n, std::uint32_t d, std::uint64_t a,
           const BackoffConfig &bo = BackoffConfig::none())
{
    TreeBarrierConfig cfg;
    cfg.processors = n;
    cfg.fanIn = d;
    cfg.arrivalWindow = a;
    cfg.backoff = bo;
    return cfg;
}

} // namespace

TEST(TreeBarrier, SingleProcessor)
{
    TreeBarrierSimulator sim(treeConfig(1, 2, 0));
    EXPECT_EQ(sim.nodeCount(), 1u);
    EXPECT_EQ(sim.depth(), 1u);
    Rng rng(1);
    const auto res = sim.runOnce(rng);
    EXPECT_EQ(res.accesses[0], 2u) << "one F&A, one flag set";
}

TEST(TreeBarrier, TreeGeometry)
{
    // 256 procs, fan-in 4: 64 + 16 + 4 + 1 = 85 nodes, depth 4.
    TreeBarrierSimulator sim(treeConfig(256, 4, 0));
    EXPECT_EQ(sim.nodeCount(), 85u);
    EXPECT_EQ(sim.depth(), 4u);

    // Non-power: 100 procs, fan-in 8: 13 + 2 + 1 nodes, depth 3.
    TreeBarrierSimulator odd(treeConfig(100, 8, 0));
    EXPECT_EQ(odd.nodeCount(), 16u);
    EXPECT_EQ(odd.depth(), 3u);
}

TEST(TreeBarrier, AllProcessorsReleased)
{
    TreeBarrierSimulator sim(treeConfig(64, 4, 500));
    Rng rng(2);
    for (int i = 0; i < 10; ++i) {
        const auto res = sim.runOnce(rng);
        ASSERT_EQ(res.accesses.size(), 64u);
        for (auto a : res.accesses)
            EXPECT_GE(a, 2u);
    }
}

TEST(TreeBarrier, DeterministicForSeed)
{
    TreeBarrierSimulator sim(
        treeConfig(64, 4, 500, BackoffConfig::exponentialFlag(2)));
    const auto a = sim.runMany(10, 9);
    const auto b = sim.runMany(10, 9);
    EXPECT_DOUBLE_EQ(a.accesses.mean(), b.accesses.mean());
    EXPECT_DOUBLE_EQ(a.wait.mean(), b.wait.mean());
}

TEST(TreeBarrier, BoundsHotModuleTraffic)
{
    // The whole point: at A = 0 the flat barrier's flag module sees
    // ~N^2-ish requests while each tree module sees O(fan-in * N/d).
    const std::uint32_t n = 256;
    BarrierConfig flat;
    flat.processors = n;
    const auto flat_s = BarrierSimulator(flat).runMany(20, 3);

    TreeBarrierSimulator tree(treeConfig(n, 4, 0));
    const auto tree_s = tree.runMany(20, 3);

    EXPECT_LT(tree_s.maxModuleTraffic.mean() * 10,
              flat_s.flagTraffic.mean());
}

TEST(TreeBarrier, FewerAccessesThanFlatAtSimultaneousArrival)
{
    const std::uint32_t n = 256;
    BarrierConfig flat;
    flat.processors = n;
    const auto flat_s = BarrierSimulator(flat).runMany(20, 5);

    TreeBarrierSimulator tree(treeConfig(n, 4, 0));
    const auto tree_s = tree.runMany(20, 5);
    EXPECT_LT(tree_s.accesses.mean(), flat_s.accesses.mean() / 4);
}

TEST(TreeBarrier, NodeBackoffStillHelpsAtLargeA)
{
    // Section 6.2: "our backoff methods can still be used on the
    // intermediate nodes of the combining tree."
    const auto none =
        TreeBarrierSimulator(treeConfig(64, 4, 2000)).runMany(30, 7);
    const auto exp2 = TreeBarrierSimulator(
                          treeConfig(64, 4, 2000,
                                     BackoffConfig::exponentialFlag(2)))
                          .runMany(30, 7);
    EXPECT_LT(exp2.accesses.mean(), none.accesses.mean() / 3);
}

TEST(TreeBarrier, RootSetAfterLastArrivalPossible)
{
    TreeBarrierSimulator sim(treeConfig(32, 2, 300));
    Rng rng(11);
    const auto res = sim.runOnce(rng);
    // The root cannot be set before every processor has arrived and
    // the longest chain of F&As has completed.
    EXPECT_GE(res.rootSetTime, 0u);
    for (auto w : res.waits)
        EXPECT_GT(w, 0u);
}

/** Property sweep over (N, fan-in, A): everything terminates, all
 *  released, and per-module traffic stays bounded by a fan-in-scaled
 *  budget. */
class TreeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>
{
};

TEST_P(TreeSweep, TerminatesAndBoundsModuleTraffic)
{
    const auto [n, d, a] = GetParam();
    TreeBarrierSimulator sim(treeConfig(n, d, a));
    Rng rng(13);
    const auto res = sim.runOnce(rng);
    ASSERT_EQ(res.accesses.size(), n);
    // Each node serves <= d arrivals; with continuous polling the
    // busiest module's traffic is bounded by d * (episode span).
    // A loose but meaningful budget: d * (A + accesses-bound).
    EXPECT_GT(res.maxModuleTraffic, 0u);
    if (a == 0) {
        EXPECT_LT(res.maxModuleTraffic,
                  16ull * d * d + 4ull * d * n / d + 64);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TreeSweep,
    ::testing::Combine(::testing::Values(3u, 16u, 64u, 257u),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(0ull, 100ull, 1000ull)),
    [](const ::testing::TestParamInfo<TreeSweep::ParamType> &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "_d" +
               std::to_string(std::get<1>(info.param)) + "_A" +
               std::to_string(std::get<2>(info.param));
    });
