/**
 * @file
 * Open-arrival engine tests: determinism (seed and --jobs), the
 * conservation ledger, saturation-detector verdicts on known-stable
 * and known-saturated loads, the graceful-degradation controls, and
 * the arrival-indexed fault hooks (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/open_system.hpp"
#include "obs/counters.hpp"
#include "support/fault.hpp"

using namespace absync;
using namespace absync::core;
using absync::support::Rng;

namespace
{

constexpr std::uint32_t kHold = 50;
constexpr double kCapacity = 1.0 / kHold;

OpenSystemConfig
makeCfg(double rho, const char *policy,
        ArrivalProcess process = ArrivalProcess::Poisson,
        std::uint64_t cycles = 150000)
{
    OpenSystemConfig cfg;
    cfg.lambda = rho * kCapacity;
    cfg.arrivals = process;
    cfg.burstSize = 32;
    cfg.backoff = openBackoffFromString(policy);
    cfg.holdCycles = kHold;
    cfg.cycles = cycles;
    return cfg;
}

/** The saturated reference point used throughout: exp8 under
 *  adversarial bursts at 85% of capacity diverges hard. */
OpenSystemConfig
saturatedCfg()
{
    return makeCfg(0.85, "exp8", ArrivalProcess::Adversarial);
}

/** offered arrivals all have exactly one final fate. */
void
expectLedgerBalances(const OpenSystemStats &st)
{
    // Without retry-after, every shed is a drop...
    EXPECT_EQ(st.sheds, st.drops + st.shedRetries);
    // ...and every offered arrival was admitted or dropped (a
    // pending retry at the horizon is impossible with retryAfter=0).
    EXPECT_EQ(st.arrivalsOffered, st.arrivalsAdmitted + st.drops);
    // Every admitted request completed, withdrew, or is still there.
    EXPECT_EQ(st.arrivalsAdmitted,
              st.completions + st.withdrawals + st.backlogAtEnd);
}

} // namespace

TEST(OpenSystem, UncontendedArrivalsCompleteWithZeroDelay)
{
    // λ so low that back-to-back contention is essentially absent:
    // every request acquires on its arrival cycle.
    auto cfg = makeCfg(0.01, "exp2");
    Rng rng(3);
    const auto st = OpenSystem(cfg).run(rng);
    ASSERT_GT(st.completions, 5u);
    EXPECT_EQ(st.delayMax, 0.0);
    EXPECT_EQ(st.withdrawals, 0u);
    EXPECT_EQ(st.sheds, 0u);
    EXPECT_FALSE(st.saturated);
    // Uncontended: one access per poll, one poll per completion.
    EXPECT_DOUBLE_EQ(st.accessesPerCompletion, 1.0);
    expectLedgerBalances(st);
}

TEST(OpenSystem, PoissonOfferedRateMatchesLambda)
{
    auto cfg = makeCfg(0.5, "exp2");
    cfg.cycles = 1000000;
    Rng rng(11);
    const auto st = OpenSystem(cfg).run(rng);
    EXPECT_NEAR(st.offeredRate, cfg.lambda, 0.05 * cfg.lambda);
}

TEST(OpenSystem, BatchArrivalsComeInBatches)
{
    auto cfg = makeCfg(0.2, "exp2", ArrivalProcess::Batch);
    cfg.batchSize = 8;
    Rng rng(5);
    const auto st = OpenSystem(cfg).run(rng);
    // A whole batch lands on one cycle, so backlog reaches the batch
    // size even at light load.
    EXPECT_GE(st.peakBacklog, 8u);
    EXPECT_NEAR(st.offeredRate, cfg.lambda, 0.10 * cfg.lambda);
}

TEST(OpenSystem, DeterministicForSeed)
{
    const OpenSystem sim(makeCfg(0.7, "exp4"));
    Rng a(99), b(99);
    const auto sa = sim.run(a);
    const auto sb = sim.run(b);
    EXPECT_EQ(sa.arrivalsOffered, sb.arrivalsOffered);
    EXPECT_EQ(sa.completions, sb.completions);
    EXPECT_EQ(sa.accesses, sb.accesses);
    EXPECT_EQ(sa.saturatedWindows, sb.saturatedWindows);
    EXPECT_DOUBLE_EQ(sa.delayP99, sb.delayP99);
    EXPECT_DOUBLE_EQ(sa.avgBacklog, sb.avgBacklog);
}

TEST(OpenSystem, RunManyIsBitwiseIdenticalForAnyJobs)
{
    // The PR 5 determinism contract: streams are pre-split serially
    // and folded in run order, so the worker count can never change
    // a reported number — including the run-averaged doubles.
    const OpenSystem sim(makeCfg(0.85, "exp2"));
    const auto s1 = sim.runMany(6, 1234, 1);
    const auto s4 = sim.runMany(6, 1234, 4);
    EXPECT_EQ(s1.arrivalsOffered, s4.arrivalsOffered);
    EXPECT_EQ(s1.completions, s4.completions);
    EXPECT_EQ(s1.accesses, s4.accesses);
    EXPECT_EQ(s1.peakBacklog, s4.peakBacklog);
    EXPECT_EQ(s1.saturatedRuns, s4.saturatedRuns);
    EXPECT_EQ(s1.saturatedWindows, s4.saturatedWindows);
    EXPECT_EQ(s1.goodputRatio, s4.goodputRatio);
    EXPECT_EQ(s1.avgBacklog, s4.avgBacklog);
    EXPECT_EQ(s1.delayP50, s4.delayP50);
    EXPECT_EQ(s1.delayP99, s4.delayP99);
    EXPECT_EQ(s1.avgDelay, s4.avgDelay);
    EXPECT_EQ(s1.goodputSeries.samples, s4.goodputSeries.samples);
}

TEST(OpenSystem, StableLoadIsNotFlagged)
{
    for (const char *policy : {"exp2", "exp4", "exp8", "robust"}) {
        const auto st =
            OpenSystem(makeCfg(0.3, policy)).runMany(4, 23);
        EXPECT_FALSE(st.saturated) << policy;
        EXPECT_GT(st.goodputRatio, 0.97) << policy;
    }
}

TEST(OpenSystem, SaturatedLoadIsFlaggedAndCollapsed)
{
    Rng rng(23);
    const auto st = OpenSystem(saturatedCfg()).run(rng);
    EXPECT_TRUE(st.saturated);
    EXPECT_GT(st.saturatedWindows, 0u);
    EXPECT_LT(st.goodputRatio, 0.5);
    // Divergence: a large standing backlog remains at the horizon.
    EXPECT_GT(st.backlogAtEnd, 100u);
    expectLedgerBalances(st);
}

TEST(OpenSystem, DetectorWindowsCoverTheRun)
{
    auto cfg = makeCfg(0.5, "exp2");
    cfg.detector.windowCycles = 4096;
    Rng rng(7);
    const auto st = OpenSystem(cfg).run(rng);
    EXPECT_EQ(st.windows, cfg.cycles / cfg.detector.windowCycles);
}

TEST(OpenSystem, SheddingBoundsBacklogAndMemory)
{
    auto cfg = saturatedCfg();
    cfg.shedCapacity = 64;
    Rng rng(23);
    const auto st = OpenSystem(cfg).run(rng);
    EXPECT_LE(st.peakBacklog, 64u);
    EXPECT_GT(st.sheds, 0u);
    expectLedgerBalances(st);
}

TEST(OpenSystem, HardCapAlwaysBoundsBacklog)
{
    auto cfg = saturatedCfg();
    cfg.hardCap = 128;
    Rng rng(23);
    const auto st = OpenSystem(cfg).run(rng);
    EXPECT_LE(st.peakBacklog, 128u);
    EXPECT_GT(st.sheds, 0u);
}

TEST(OpenSystem, QueueEscalationRestoresGoodput)
{
    // The acceptance bar: an otherwise-unstable configuration, with
    // queue-on-threshold escalation enabled, completes >= 90% of the
    // offered load and clears the detector.  Averaged over runs, like
    // the ext_open_arrivals degradation table it mirrors.
    const auto base = OpenSystem(saturatedCfg()).runMany(4, 23);
    auto cfg = saturatedCfg();
    cfg.queueThreshold = 64;
    const auto fixed = OpenSystem(cfg).runMany(4, 23);
    EXPECT_LT(base.goodputRatio, 0.5);
    EXPECT_GE(fixed.goodputRatio, 0.9);
    EXPECT_FALSE(fixed.saturated);
    EXPECT_GT(fixed.parks, 0u);
}

TEST(OpenSystem, RetryAfterReadmitsShedArrivals)
{
    auto cfg = saturatedCfg();
    cfg.shedCapacity = 64;
    cfg.retryAfter = 4 * kHold;
    cfg.maxAdmitRetries = 8;
    Rng rng(23);
    const auto st = OpenSystem(cfg).run(rng);
    EXPECT_GT(st.shedRetries, 0u);
    // Re-admission works: more requests were admitted than the
    // no-retry ledger (offered - drops) would allow if every shed
    // were final.
    EXPECT_LT(st.drops, st.sheds);
    EXPECT_LE(st.peakBacklog, 64u);
}

TEST(OpenSystem, RetryBudgetWithdrawsWaiters)
{
    auto cfg = saturatedCfg();
    cfg.retryBudget = 5;
    Rng a(23), b(23);
    const auto base = OpenSystem(saturatedCfg()).run(a);
    const auto st = OpenSystem(cfg).run(b);
    EXPECT_GT(st.withdrawals, 0u);
    // Withdrawal culls the sleeping herd, so the standing backlog is
    // far below the divergent baseline's.
    EXPECT_LT(st.avgBacklog, base.avgBacklog / 2.0);
    expectLedgerBalances(st);
}

TEST(OpenSystem, ArrivalTimeoutFaultsForceWithdrawals)
{
    support::FaultPlanConfig fcfg;
    fcfg.seed = 77;
    fcfg.arrivalTimeoutProb = 0.5;
    const support::FaultPlan plan(fcfg);

    auto cfg = makeCfg(0.85, "exp2");
    cfg.faults = &plan;
    Rng rng(9);
    const auto st = OpenSystem(cfg).run(rng);
    EXPECT_GT(st.withdrawals, 0u);
    expectLedgerBalances(st);
}

TEST(OpenSystem, ArrivalFaultsAreScheduleIndependent)
{
    // The fault plan addresses arrivals by index, so runs whose
    // *timing* differs (different backoff policy) withdraw the same
    // arrivals whenever those arrivals hit the busy path.  Weaker
    // but schedule-free check: the same plan on the same config is
    // exactly reproducible across independent engine instances.
    support::FaultPlanConfig fcfg;
    fcfg.seed = 13;
    fcfg.arrivalTimeoutProb = 0.3;
    fcfg.stragglerProb = 0.2;
    fcfg.stragglerMin = 5;
    fcfg.stragglerMax = 50;
    const support::FaultPlan plan(fcfg);

    auto cfg = makeCfg(0.9, "exp4");
    cfg.faults = &plan;
    Rng a(4), b(4);
    const auto sa = OpenSystem(cfg).run(a);
    const auto sb = OpenSystem(cfg).run(b);
    EXPECT_EQ(sa.withdrawals, sb.withdrawals);
    EXPECT_EQ(sa.completions, sb.completions);
    EXPECT_EQ(sa.accesses, sb.accesses);
}

TEST(OpenSystem, SeriesRespectTheirSampleBudget)
{
    auto cfg = makeCfg(0.7, "exp2");
    cfg.cycles = 2000000;
    cfg.detector.windowCycles = 1024;
    cfg.seriesSamples = 64;
    Rng rng(6);
    const auto st = OpenSystem(cfg).run(rng);
    // 1953 windows offered into a 64-sample budget: decimated.
    EXPECT_LE(st.goodputSeries.samples.size(), 64u);
    EXPECT_LE(st.backlogSeries.samples.size(), 64u);
    EXPECT_GT(st.goodputSeries.samples.size(), 16u);
}

TEST(OpenSystem, EngineCountersMatchStats)
{
    // The engine's obs record points are counter-exact: arrivals,
    // sheds, and saturated windows mirror the returned stats.
    obs::SyncCounters mine;
    OpenSystemStats st;
    {
        obs::ScopedCounters sc(&mine);
        auto cfg = saturatedCfg();
        cfg.shedCapacity = 64;
        Rng rng(23);
        st = OpenSystem(cfg).run(rng);
    }
    const obs::CounterSnapshot snap = mine.snapshot();
    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(snap.arrivals, st.arrivalsAdmitted);
        EXPECT_EQ(snap.sheds, st.sheds);
        EXPECT_EQ(snap.saturatedWindows, st.saturatedWindows);
        EXPECT_EQ(snap.cyclesSkipped, st.cyclesSkipped);
        EXPECT_EQ(snap.eventsProcessed, st.eventsProcessed);
    } else {
        EXPECT_TRUE(snap == obs::CounterSnapshot{});
    }
    EXPECT_GT(st.sheds, 0u);
}

// ---------------------------------------------------------------------
// SaturationDetector unit tests: feed synthetic windows, check the
// verdict logic directly.
// ---------------------------------------------------------------------

namespace
{

SaturationDetectorConfig
detCfg()
{
    SaturationDetectorConfig cfg;
    cfg.windowCycles = 1000;
    cfg.trendWindows = 4;
    cfg.minBacklog = 64;
    cfg.collapseFraction = 0.75;
    cfg.windowCapacity = 100;
    return cfg;
}

} // namespace

TEST(SaturationDetector, StableWindowsNeverFlag)
{
    SaturationDetector det(detCfg());
    for (int i = 0; i < 100; ++i)
        det.observe(50, 50, i % 8); // tiny, fluctuating backlog
    EXPECT_FALSE(det.latched());
    EXPECT_EQ(det.saturatedWindows(), 0u);
    EXPECT_EQ(det.windows(), 100u);
}

TEST(SaturationDetector, MonotoneGrowthAboveFloorFlags)
{
    SaturationDetector det(detCfg());
    std::uint64_t backlog = 10;
    for (int i = 0; i < 10; ++i) {
        backlog += 30;
        det.observe(80, 50, backlog);
    }
    EXPECT_TRUE(det.latched());
    EXPECT_GT(det.saturatedWindows(), 0u);
}

TEST(SaturationDetector, GrowthBelowFloorDoesNotFlag)
{
    // Strictly growing but tiny backlogs: a ramp inside the healthy
    // standing pool, not divergence.
    SaturationDetector det(detCfg());
    for (std::uint64_t b = 1; b <= 20; ++b)
        det.observe(50, 50, b);
    EXPECT_FALSE(det.latched());
}

TEST(SaturationDetector, DrainingQueueAtCapacityIsHealthy)
{
    // A burst left a big backlog, but the resource completes at full
    // capacity while it drains: goodput has not collapsed.
    SaturationDetector det(detCfg());
    std::uint64_t backlog = 900;
    for (int i = 0; i < 9; ++i) {
        det.observe(0, 100, backlog); // completing at capacity
        backlog -= 100;
    }
    EXPECT_FALSE(det.latched());
}

TEST(SaturationDetector, BackloggedEquilibriumAtArrivalRateIsHealthy)
{
    // Standing backlog, but completions track admissions (a slow but
    // stable equilibrium): not saturation.
    SaturationDetector det(detCfg());
    for (int i = 0; i < 50; ++i)
        det.observe(40, 40, 200);
    EXPECT_FALSE(det.latched());
}

TEST(SaturationDetector, IdleWasteUnderStandingQueueFlags)
{
    // The failure mode: backlog high, inflow present, yet completions
    // far below both inflow and capacity — the resource is idling
    // while waiters sleep.
    SaturationDetector det(detCfg());
    for (int i = 0; i < 10; ++i)
        det.observe(60, 10, 500);
    EXPECT_TRUE(det.latched());
    EXPECT_GT(det.saturatedWindows(), 0u);
}

TEST(SaturationDetector, VerdictNeedsAFullTrendSpan)
{
    SaturationDetector det(detCfg());
    det.observe(60, 10, 500);
    det.observe(60, 10, 600);
    det.observe(60, 10, 700);
    EXPECT_FALSE(det.latched()); // only 3 of 4 windows seen
    det.observe(60, 10, 800);
    EXPECT_TRUE(det.latched());
    EXPECT_TRUE(det.saturatedNow());
}
