/** @file Tests for the profile-guided policy advisor. */

#include <gtest/gtest.h>

#include "core/policy_advisor.hpp"

using namespace absync::core;

namespace
{

AdvisorConfig
fastCfg(double idle_weight = 0.05)
{
    AdvisorConfig cfg;
    cfg.runs = 15;
    cfg.idleWeight = idle_weight;
    return cfg;
}

} // namespace

TEST(PolicyAdvisor, RankingIsSortedAndComplete)
{
    const auto advice = advisePolicy({64, 1000, 0}, fastCfg());
    ASSERT_GE(advice.ranking.size(), 5u);
    for (std::size_t i = 1; i < advice.ranking.size(); ++i)
        EXPECT_GE(advice.ranking[i].cost, advice.ranking[i - 1].cost);
    EXPECT_DOUBLE_EQ(advice.best.cost, advice.ranking.front().cost);
}

TEST(PolicyAdvisor, SparseArrivalsGetExponential)
{
    const auto advice = advisePolicy({64, 1000, 0}, fastCfg());
    EXPECT_EQ(advice.best.policy.onFlag, FlagBackoff::Exponential);
    EXPECT_EQ(advice.best.policy.blockThreshold, 0u);
}

TEST(PolicyAdvisor, BlockingOfferedOnlyWithWakeupPath)
{
    const auto no_block = advisePolicy({16, 4000, 0}, fastCfg());
    for (const auto &s : no_block.ranking)
        EXPECT_EQ(s.policy.blockThreshold, 0u);

    const auto with_block = advisePolicy({16, 4000, 100}, fastCfg());
    bool any_blocking = false;
    for (const auto &s : with_block.ranking)
        any_blocking |= s.policy.blockThreshold != 0;
    EXPECT_TRUE(any_blocking);
}

TEST(PolicyAdvisor, BlockingWinsWhenArrivalsVerySparse)
{
    const auto advice = advisePolicy({16, 8000, 100}, fastCfg());
    EXPECT_NE(advice.best.policy.blockThreshold, 0u)
        << "very sparse arrivals with a cheap wakeup should block";
}

TEST(PolicyAdvisor, HighIdleWeightAvoidsAggressiveOvershoot)
{
    // With idle time priced heavily, the advisor must not pick a
    // policy that multiplies waiting time.
    const auto cheap = advisePolicy({64, 1000, 0}, fastCfg(0.0));
    const auto costly = advisePolicy({64, 1000, 0}, fastCfg(50.0));
    EXPECT_LE(costly.best.wait, cheap.best.wait * 1.05);
    // And the traffic-only advisor accepts more waiting in exchange
    // for fewer accesses.
    EXPECT_LE(cheap.best.accesses, costly.best.accesses * 1.05);
}

TEST(PolicyAdvisor, NoBackoffNeverStrictlyBestAtLargeA)
{
    const auto advice = advisePolicy({64, 1000, 0}, fastCfg());
    const auto &best = advice.best.policy;
    EXPECT_TRUE(best.onVariable || best.onFlag != FlagBackoff::None)
        << "some form of backoff must win when A >> N";
}

TEST(PolicyAdvisor, DeterministicGivenSeed)
{
    const auto a = advisePolicy({32, 500, 0}, fastCfg());
    const auto b = advisePolicy({32, 500, 0}, fastCfg());
    EXPECT_EQ(a.best.policy.name(), b.best.policy.name());
    EXPECT_DOUBLE_EQ(a.best.cost, b.best.cost);
}
