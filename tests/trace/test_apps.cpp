/** @file Tests of the synthetic application generators against the
 *        structural properties Appendix A documents. */

#include <gtest/gtest.h>

#include <set>

#include "trace/apps.hpp"
#include "trace/spmd.hpp"

using namespace absync::trace;

namespace
{

SpmdProgram
parseApp(const std::string &name, double scale = 0.1)
{
    return SpmdProgram::parse(makeAppTrace(name, scale));
}

} // namespace

TEST(Apps, AllThreeParseCleanly)
{
    for (const char *name : {"fft", "simple", "weather"})
        EXPECT_NO_THROW(parseApp(name)) << name;
}

TEST(Apps, DeterministicGeneration)
{
    const auto a = makeFftTrace({});
    const auto b = makeFftTrace({});
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); i += 997) {
        EXPECT_EQ(a.records[i].kind, b.records[i].kind);
        EXPECT_EQ(a.records[i].addr, b.records[i].addr);
    }
}

TEST(Apps, FftHas128WayUniformLoops)
{
    const auto prog = parseApp("fft");
    // Replicate setup + two parallel passes.
    std::size_t parallel = 0;
    for (const auto &s : prog.sections) {
        if (s.kind != SpmdSection::Kind::Parallel)
            continue;
        ++parallel;
        EXPECT_EQ(s.tasks.size(), 128u);
        // Uniform: every task has the same length.
        for (const auto &t : s.tasks)
            EXPECT_EQ(t.size(), s.tasks[0].size());
    }
    EXPECT_EQ(parallel, 2u) << "two TF2 passes";
}

TEST(Apps, FftPassesShareDataTransposed)
{
    // The row pass writes what the column pass reads: the two
    // parallel sections must touch overlapping shared addresses.
    // Full scale: subsampling thins the overlap by construction.
    const auto prog = parseApp("fft", 1.0);
    std::set<std::uint64_t> pass_written[2];
    std::size_t pi = 0;
    for (const auto &s : prog.sections) {
        if (s.kind != SpmdSection::Kind::Parallel)
            continue;
        for (const auto &t : s.tasks) {
            for (const auto &r : t) {
                if (r.write && !region::isPrivate(r.addr))
                    pass_written[pi].insert(r.addr);
            }
        }
        ++pi;
    }
    std::size_t overlap = 0;
    for (std::uint64_t a : pass_written[0])
        overlap += pass_written[1].count(a);
    EXPECT_GT(overlap, pass_written[0].size() / 2);
}

TEST(Apps, SimpleHasTwentyLoopsAndFiveSerials)
{
    const auto prog = parseApp("simple");
    std::size_t parallel = 0, serial = 0;
    for (const auto &s : prog.sections) {
        parallel += s.kind == SpmdSection::Kind::Parallel;
        serial += s.kind == SpmdSection::Kind::Serial;
    }
    EXPECT_EQ(parallel, 20u);
    EXPECT_EQ(serial, 5u);
}

TEST(Apps, SimpleLoopWidthsNotAllFull)
{
    const auto prog = parseApp("simple");
    std::size_t non_full = 0;
    for (const auto &s : prog.sections) {
        if (s.kind == SpmdSection::Kind::Parallel &&
            s.tasks.size() != 128) {
            ++non_full;
        }
    }
    EXPECT_GE(non_full, 5u)
        << "many SIMPLE loops lack full 128-way parallelism";
}

TEST(Apps, SimpleIterationLengthsVary)
{
    const auto prog = parseApp("simple");
    bool varied = false;
    for (const auto &s : prog.sections) {
        if (s.kind != SpmdSection::Kind::Parallel)
            continue;
        for (const auto &t : s.tasks) {
            if (t.size() != s.tasks[0].size())
                varied = true;
        }
    }
    EXPECT_TRUE(varied);
}

TEST(Apps, WeatherWidthsAre108And72)
{
    const auto prog = parseApp("weather");
    std::set<std::size_t> widths;
    for (const auto &s : prog.sections) {
        if (s.kind == SpmdSection::Kind::Parallel)
            widths.insert(s.tasks.size());
    }
    EXPECT_TRUE(widths.count(108));
    EXPECT_TRUE(widths.count(72));
}

TEST(Apps, WeatherIterationsAreLong)
{
    // WEATHER iterations sweep a full line through 9 levels, so they
    // dwarf SIMPLE's per-row stencils at the same scale.
    const auto w = parseApp("weather", 1.0);
    const auto s = parseApp("simple", 1.0);
    std::size_t w_len = 0, s_len = 0;
    for (const auto &sec : w.sections) {
        if (sec.kind == SpmdSection::Kind::Parallel) {
            w_len = sec.tasks[0].size();
            break;
        }
    }
    for (const auto &sec : s.sections) {
        if (sec.kind == SpmdSection::Kind::Parallel) {
            s_len = sec.tasks[0].size();
            break;
        }
    }
    EXPECT_GT(w_len, s_len);
}

TEST(Apps, ScaleReducesWork)
{
    const auto full = makeAppTrace("simple", 1.0);
    const auto tenth = makeAppTrace("simple", 0.1);
    EXPECT_LT(tenth.referenceCount(), full.referenceCount() / 5);
    EXPECT_GT(tenth.referenceCount(), 0u);
    // Structure is preserved: same section count.
    EXPECT_EQ(SpmdProgram::parse(tenth).sections.size(),
              SpmdProgram::parse(full).sections.size());
}

TEST(Apps, AddressesStayInDeclaredRegions)
{
    for (const char *name : {"fft", "simple", "weather"}) {
        const auto t = makeAppTrace(name, 0.05);
        for (const auto &r : t.records) {
            if (!r.isReference())
                continue;
            const bool shared = r.addr >= region::SHARED &&
                                r.addr < region::SHARED +
                                             region::REGION_SIZE;
            EXPECT_TRUE(shared || region::isPrivate(r.addr))
                << name << " addr " << std::hex << r.addr;
        }
    }
}

TEST(Apps, UnknownNameIsFatal)
{
    EXPECT_DEATH(
        {
            auto t = makeAppTrace("nosuch", 1.0);
            (void)t;
        },
        "unknown application");
}
