/** @file Fuzz-style property tests: the SPMD parser must either
 *        parse or throw TraceFormatError on arbitrary marker soup —
 *        never crash, never accept garbage silently. */

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "trace/spmd.hpp"

using namespace absync::trace;
using absync::support::Rng;

namespace
{

MarkedTrace
randomSoup(Rng &rng, std::size_t len)
{
    MarkedTrace t;
    t.name = "soup";
    for (std::size_t i = 0; i < len; ++i) {
        const auto kind = static_cast<MarkedRecord::Kind>(
            rng.index(9));
        MarkedRecord r;
        r.kind = kind;
        r.aux = static_cast<std::uint32_t>(rng.index(5));
        r.addr = region::SHARED + rng.index(1024) * 8;
        t.records.push_back(r);
    }
    return t;
}

} // namespace

TEST(ParserFuzz, NeverCrashesOnMarkerSoup)
{
    Rng rng(20260707);
    int parsed = 0, rejected = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        const auto t = randomSoup(rng, 1 + rng.index(30));
        try {
            const auto prog = SpmdProgram::parse(t);
            ++parsed;
            // Anything accepted must be internally consistent.
            for (const auto &s : prog.sections) {
                if (s.kind != SpmdSection::Kind::Parallel)
                    EXPECT_EQ(s.tasks.size(), 1u);
                else
                    EXPECT_GE(s.tasks.size(), 1u);
            }
        } catch (const TraceFormatError &) {
            ++rejected;
        }
    }
    // Random soup is overwhelmingly invalid, but both paths must be
    // exercised.
    EXPECT_GT(rejected, 100);
    EXPECT_EQ(parsed + rejected, 2000);
}

TEST(ParserFuzz, ValidProgramsAlwaysRoundTrip)
{
    // Generate *valid* random programs and check parse acceptance.
    Rng rng(42);
    using K = MarkedRecord::Kind;
    for (int trial = 0; trial < 300; ++trial) {
        MarkedTrace t;
        t.name = "valid";
        const int sections = static_cast<int>(rng.index(5));
        std::size_t expected_refs = 0;
        for (int s = 0; s < sections; ++s) {
            switch (rng.index(3)) {
              case 0: {
                const auto tasks =
                    1 + static_cast<std::uint32_t>(rng.index(6));
                t.records.push_back(
                    MarkedRecord::marker(K::ParallelBegin, tasks));
                for (std::uint32_t k = 0; k < tasks; ++k) {
                    t.records.push_back(
                        MarkedRecord::marker(K::TaskBegin));
                    const auto refs = rng.index(8);
                    for (std::uint64_t r = 0; r < refs; ++r) {
                        t.records.push_back(MarkedRecord::read(
                            region::SHARED + r * 8));
                        ++expected_refs;
                    }
                }
                t.records.push_back(
                    MarkedRecord::marker(K::ParallelEnd));
                break;
              }
              case 1:
                t.records.push_back(
                    MarkedRecord::marker(K::SerialBegin));
                t.records.push_back(
                    MarkedRecord::write(region::SHARED));
                ++expected_refs;
                t.records.push_back(
                    MarkedRecord::marker(K::SerialEnd));
                break;
              default:
                t.records.push_back(
                    MarkedRecord::marker(K::ReplicateBegin));
                t.records.push_back(
                    MarkedRecord::read(region::PRIVATE));
                ++expected_refs;
                t.records.push_back(
                    MarkedRecord::marker(K::ReplicateEnd));
                break;
            }
        }
        const auto prog = SpmdProgram::parse(t);
        EXPECT_EQ(prog.referenceCount(), expected_refs);
    }
}
