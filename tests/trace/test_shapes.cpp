/** @file Integration tests: the synthetic applications must show the
 *        qualitative interval shapes of the paper's Table 3 and
 *        Figure 3, which the whole evaluation builds on. */

#include <gtest/gtest.h>

#include "trace/apps.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"

using namespace absync::trace;

namespace
{

ScheduleStats
runApp(const std::string &name, std::uint32_t procs,
       double scale = 0.25)
{
    const auto prog = SpmdProgram::parse(makeAppTrace(name, scale));
    return PostMortemScheduler(prog, procs).run();
}

} // namespace

TEST(Shapes, FftAIsSmallAndEIsHuge)
{
    // Table 3: FFT A=237/E=228073 at 16 procs — E/A is enormous.
    const auto s = runApp("fft", 16);
    EXPECT_GT(s.averageE() / s.averageA(), 50.0);
}

TEST(Shapes, FftAGrowsWithProcessorCount)
{
    // Table 3: FFT A grows 237 -> 285 from 16 to 64 processors,
    // driven by serialization at the loop-index F&A.
    const auto s16 = runApp("fft", 16);
    const auto s64 = runApp("fft", 64);
    EXPECT_GT(s64.averageA(), s16.averageA() * 1.5);
}

TEST(Shapes, SimpleAIsRoughlyConstantInProcs)
{
    // Table 3: SIMPLE A is 7021 at 16 and 7067 at 64 — imbalance,
    // not serialization, sets the window.
    const auto s16 = runApp("simple", 16);
    const auto s64 = runApp("simple", 64);
    EXPECT_LT(s64.averageA() / s16.averageA(), 2.0);
    EXPECT_GT(s64.averageA() / s16.averageA(), 0.5);
}

TEST(Shapes, SimpleAComparableToEAt64)
{
    // Table 3: SIMPLE at 64 procs has E=6195 vs A=7067 (same size).
    const auto s = runApp("simple", 64);
    const double ratio = s.averageA() / s.averageE();
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 3.0);
}

TEST(Shapes, WeatherAIsConstantInProcs)
{
    // Table 3: WEATHER A barely moves (82754 -> 82787): the window is
    // set by load imbalance (tail iterations), not processor count.
    // Our synthetic tail shifts composition a little with P, so allow
    // a 2x band — the contrast is with FFT, whose A scales with N.
    const auto s16 = runApp("weather", 16);
    const auto s64 = runApp("weather", 64);
    const double ratio = s64.averageA() / s16.averageA();
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Shapes, WeatherEShrinksTowardsAAt64)
{
    // Table 3: WEATHER E falls from 495298 (16p) to 82716 (64p),
    // ending up the same size as A.
    const auto s16 = runApp("weather", 16);
    const auto s64 = runApp("weather", 64);
    EXPECT_LT(s64.averageE(), s16.averageE() / 2.0);
    const double ratio = s64.averageA() / s64.averageE();
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 3.0);
}

TEST(Shapes, SyncFractionOrderingMatchesPaper)
{
    // Paper: 0.2 % (FFT) < 5.3 % (SIMPLE) ~ 7.9 % (WEATHER).  The
    // essential claim: FFT synchronizes an order of magnitude less.
    const auto fft = runApp("fft", 64);
    const auto simple = runApp("simple", 64);
    const auto weather = runApp("weather", 64);
    EXPECT_LT(fft.syncFraction() * 5, simple.syncFraction());
    EXPECT_LT(fft.syncFraction() * 5, weather.syncFraction());
    EXPECT_LT(fft.syncFraction(), 0.02);
    EXPECT_GT(simple.syncFraction(), 0.03);
    EXPECT_GT(weather.syncFraction(), 0.03);
}

TEST(Shapes, FftArrivalsMoreUniformThanSimple)
{
    // Figure 3: FFT arrivals are roughly uniform within A; SIMPLE's
    // are skewed towards the beginning and end of the window.  We
    // compare the mass in the middle half of the window.
    const auto fft = runApp("fft", 16);
    const auto simple = runApp("simple", 16);
    const auto h_fft = fft.arrivalDistribution(4);
    const auto h_simple = simple.arrivalDistribution(4);
    const double mid_fft =
        h_fft.binFraction(1) + h_fft.binFraction(2);
    const double mid_simple =
        h_simple.binFraction(1) + h_simple.binFraction(2);
    EXPECT_LT(mid_simple, 0.4)
        << "SIMPLE mass concentrates at the window edges";
    EXPECT_GT(mid_fft, mid_simple);
}
