/** @file Unit tests for SPMD program parsing and validation. */

#include <gtest/gtest.h>

#include "trace/spmd.hpp"

using namespace absync::trace;
using K = MarkedRecord::Kind;

namespace
{

MarkedTrace
make(std::vector<MarkedRecord> recs)
{
    MarkedTrace t;
    t.name = "test";
    t.records = std::move(recs);
    return t;
}

} // namespace

TEST(Spmd, ParsesParallelSection)
{
    const auto prog = SpmdProgram::parse(make({
        MarkedRecord::marker(K::ParallelBegin, 2),
        MarkedRecord::marker(K::TaskBegin),
        MarkedRecord::read(1),
        MarkedRecord::write(2),
        MarkedRecord::marker(K::TaskBegin),
        MarkedRecord::read(3),
        MarkedRecord::marker(K::ParallelEnd),
    }));
    ASSERT_EQ(prog.sections.size(), 1u);
    const auto &s = prog.sections[0];
    EXPECT_EQ(s.kind, SpmdSection::Kind::Parallel);
    ASSERT_EQ(s.tasks.size(), 2u);
    EXPECT_EQ(s.tasks[0].size(), 2u);
    EXPECT_EQ(s.tasks[1].size(), 1u);
    EXPECT_FALSE(s.tasks[0][0].write);
    EXPECT_TRUE(s.tasks[0][1].write);
    EXPECT_EQ(prog.referenceCount(), 3u);
    EXPECT_EQ(prog.barrierCount(), 1u);
}

TEST(Spmd, ParsesSerialAndReplicate)
{
    const auto prog = SpmdProgram::parse(make({
        MarkedRecord::marker(K::SerialBegin),
        MarkedRecord::write(9),
        MarkedRecord::marker(K::SerialEnd),
        MarkedRecord::marker(K::ReplicateBegin),
        MarkedRecord::read(4),
        MarkedRecord::marker(K::ReplicateEnd),
    }));
    ASSERT_EQ(prog.sections.size(), 2u);
    EXPECT_EQ(prog.sections[0].kind, SpmdSection::Kind::Serial);
    EXPECT_EQ(prog.sections[1].kind, SpmdSection::Kind::Replicate);
    EXPECT_EQ(prog.barrierCount(), 1u) << "replicate has no barrier";
}

TEST(Spmd, RejectsReferenceOutsideSection)
{
    EXPECT_THROW(SpmdProgram::parse(make({MarkedRecord::read(1)})),
                 TraceFormatError);
}

TEST(Spmd, RejectsReferenceBeforeTaskBegin)
{
    EXPECT_THROW(SpmdProgram::parse(make({
                     MarkedRecord::marker(K::ParallelBegin, 1),
                     MarkedRecord::read(1),
                 })),
                 TraceFormatError);
}

TEST(Spmd, RejectsTaskCountMismatch)
{
    EXPECT_THROW(SpmdProgram::parse(make({
                     MarkedRecord::marker(K::ParallelBegin, 3),
                     MarkedRecord::marker(K::TaskBegin),
                     MarkedRecord::read(1),
                     MarkedRecord::marker(K::ParallelEnd),
                 })),
                 TraceFormatError);
}

TEST(Spmd, RejectsNesting)
{
    EXPECT_THROW(SpmdProgram::parse(make({
                     MarkedRecord::marker(K::ParallelBegin, 1),
                     MarkedRecord::marker(K::TaskBegin),
                     MarkedRecord::marker(K::SerialBegin),
                 })),
                 TraceFormatError);
}

TEST(Spmd, RejectsUnterminatedSection)
{
    EXPECT_THROW(SpmdProgram::parse(make({
                     MarkedRecord::marker(K::SerialBegin),
                     MarkedRecord::read(1),
                 })),
                 TraceFormatError);
}

TEST(Spmd, RejectsZeroTaskParallel)
{
    EXPECT_THROW(SpmdProgram::parse(make({
                     MarkedRecord::marker(K::ParallelBegin, 0),
                     MarkedRecord::marker(K::ParallelEnd),
                 })),
                 TraceFormatError);
}

TEST(Spmd, RejectsStrayEnd)
{
    EXPECT_THROW(
        SpmdProgram::parse(make({MarkedRecord::marker(K::ParallelEnd)})),
        TraceFormatError);
    EXPECT_THROW(
        SpmdProgram::parse(make({MarkedRecord::marker(K::SerialEnd)})),
        TraceFormatError);
}

TEST(Spmd, EmptyTraceIsEmptyProgram)
{
    const auto prog = SpmdProgram::parse(make({}));
    EXPECT_TRUE(prog.sections.empty());
    EXPECT_EQ(prog.referenceCount(), 0u);
}
