/** @file Unit tests for trace record types and region helpers. */

#include <gtest/gtest.h>

#include "trace/record.hpp"

using namespace absync::trace;

TEST(Region, Classification)
{
    EXPECT_TRUE(region::isPrivate(region::PRIVATE));
    EXPECT_TRUE(region::isPrivate(region::PRIVATE + 100));
    EXPECT_FALSE(region::isPrivate(region::SHARED));
    EXPECT_FALSE(region::isPrivate(region::SYNC));
    EXPECT_TRUE(region::isSync(region::SYNC));
    EXPECT_TRUE(region::isSync(region::SYNC + 4096));
    EXPECT_FALSE(region::isSync(region::SHARED));
}

TEST(MarkedRecord, Constructors)
{
    const auto r = MarkedRecord::read(0x100);
    EXPECT_EQ(r.kind, MarkedRecord::Kind::Read);
    EXPECT_EQ(r.addr, 0x100u);
    EXPECT_TRUE(r.isReference());

    const auto w = MarkedRecord::write(0x200);
    EXPECT_EQ(w.kind, MarkedRecord::Kind::Write);
    EXPECT_TRUE(w.isReference());

    const auto m =
        MarkedRecord::marker(MarkedRecord::Kind::ParallelBegin, 7);
    EXPECT_EQ(m.aux, 7u);
    EXPECT_FALSE(m.isReference());
}

TEST(MarkedTrace, Counts)
{
    using K = MarkedRecord::Kind;
    MarkedTrace t;
    t.name = "t";
    t.records = {
        MarkedRecord::marker(K::ParallelBegin, 1),
        MarkedRecord::marker(K::TaskBegin),
        MarkedRecord::read(1),
        MarkedRecord::write(2),
        MarkedRecord::marker(K::ParallelEnd),
        MarkedRecord::marker(K::SerialBegin),
        MarkedRecord::read(3),
        MarkedRecord::marker(K::SerialEnd),
    };
    EXPECT_EQ(t.referenceCount(), 3u);
    EXPECT_EQ(t.sectionCount(), 2u);
}
