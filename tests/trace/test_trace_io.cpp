/** @file Round-trip and error tests for trace serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/apps.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"
#include "trace/trace_io.hpp"

using namespace absync::trace;

namespace
{

/** Temporary file path helper; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(TraceIo, MarkedTraceRoundTrip)
{
    TempFile tmp("roundtrip.amt");
    const auto orig = makeAppTrace("simple", 0.02);
    saveMarkedTrace(orig, tmp.path());
    const auto loaded = loadMarkedTrace(tmp.path());

    EXPECT_EQ(loaded.name, orig.name);
    ASSERT_EQ(loaded.records.size(), orig.records.size());
    for (std::size_t i = 0; i < orig.records.size(); i += 101) {
        EXPECT_EQ(loaded.records[i].kind, orig.records[i].kind);
        EXPECT_EQ(loaded.records[i].aux, orig.records[i].aux);
        EXPECT_EQ(loaded.records[i].addr, orig.records[i].addr);
    }
    // The loaded trace must still parse into the same program.
    const auto prog = SpmdProgram::parse(loaded);
    EXPECT_EQ(prog.sections.size(),
              SpmdProgram::parse(orig).sections.size());
}

TEST(TraceIo, EmptyMarkedTraceRoundTrip)
{
    TempFile tmp("empty.amt");
    MarkedTrace t;
    t.name = "empty";
    saveMarkedTrace(t, tmp.path());
    const auto loaded = loadMarkedTrace(tmp.path());
    EXPECT_EQ(loaded.name, "empty");
    EXPECT_TRUE(loaded.records.empty());
}

TEST(TraceIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadMarkedTrace("/nonexistent/dir/x.amt"),
                 TraceIoError);
}

TEST(TraceIo, LoadGarbageThrows)
{
    TempFile tmp("garbage.amt");
    std::FILE *f = std::fopen(tmp.path().c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_THROW(loadMarkedTrace(tmp.path()), TraceIoError);
}

TEST(TraceIo, LoadTruncatedThrows)
{
    TempFile full("full.amt");
    const auto orig = makeAppTrace("fft", 0.02);
    saveMarkedTrace(orig, full.path());

    // Copy only the first half of the bytes.
    TempFile cut("cut.amt");
    std::FILE *in = std::fopen(full.path().c_str(), "rb");
    std::FILE *out = std::fopen(cut.path().c_str(), "wb");
    std::fseek(in, 0, SEEK_END);
    const long half = std::ftell(in) / 2;
    std::fseek(in, 0, SEEK_SET);
    for (long i = 0; i < half; ++i)
        std::fputc(std::fgetc(in), out);
    std::fclose(in);
    std::fclose(out);

    EXPECT_THROW(loadMarkedTrace(cut.path()), TraceIoError);
}

TEST(TraceIo, MpTraceRoundTripThroughScheduler)
{
    TempFile tmp("sched.mpt");
    const auto prog =
        SpmdProgram::parse(makeAppTrace("fft", 0.02));

    std::vector<MpRef> direct;
    {
        MpTraceWriter w(tmp.path(), 8);
        PostMortemScheduler(prog, 8).run([&](const MpRef &r) {
            w.append(r);
            direct.push_back(r);
        });
        w.close();
    }

    MpTraceReader r(tmp.path());
    EXPECT_EQ(r.processors(), 8u);
    EXPECT_EQ(r.count(), direct.size());

    MpRef ref;
    std::size_t i = 0;
    while (r.next(ref)) {
        ASSERT_LT(i, direct.size());
        EXPECT_EQ(ref.cycle, direct[i].cycle);
        EXPECT_EQ(ref.addr, direct[i].addr);
        EXPECT_EQ(ref.proc, direct[i].proc);
        EXPECT_EQ(ref.write, direct[i].write);
        EXPECT_EQ(ref.sync, direct[i].sync);
        EXPECT_EQ(ref.rmw, direct[i].rmw);
        ++i;
    }
    EXPECT_EQ(i, direct.size());
}

TEST(TraceIo, MpWriterDestructorFinalizes)
{
    TempFile tmp("dtor.mpt");
    {
        MpTraceWriter w(tmp.path(), 4);
        w.append(MpRef{0, 0x100, 1, true, false, false});
        // No explicit close(): the destructor must finalize the
        // header.
    }
    MpTraceReader r(tmp.path());
    EXPECT_EQ(r.count(), 1u);
    MpRef ref;
    ASSERT_TRUE(r.next(ref));
    EXPECT_EQ(ref.addr, 0x100u);
    EXPECT_TRUE(ref.write);
    EXPECT_FALSE(r.next(ref));
}

TEST(TraceIo, MpReaderRejectsWrongMagic)
{
    TempFile tmp("wrong.amt");
    saveMarkedTrace(makeAppTrace("fft", 0.02), tmp.path());
    EXPECT_THROW(MpTraceReader r(tmp.path()), TraceIoError);
}
