/** @file Unit and integration tests for the post-mortem scheduler. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "support/rng.hpp"
#include "trace/apps.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"

using namespace absync::trace;
using K = MarkedRecord::Kind;

namespace
{

SpmdProgram
oneLoop(std::uint32_t tasks, std::uint32_t refs_per_task)
{
    MarkedTrace t;
    t.name = "loop";
    t.records.push_back(MarkedRecord::marker(K::ParallelBegin, tasks));
    for (std::uint32_t i = 0; i < tasks; ++i) {
        t.records.push_back(MarkedRecord::marker(K::TaskBegin));
        for (std::uint32_t r = 0; r < refs_per_task; ++r) {
            t.records.push_back(MarkedRecord::read(
                region::SHARED + (i * refs_per_task + r) * 8));
        }
    }
    t.records.push_back(MarkedRecord::marker(K::ParallelEnd));
    return SpmdProgram::parse(t);
}

} // namespace

TEST(PostMortem, AllWorkExecutedExactlyOnce)
{
    const auto prog = oneLoop(10, 5);
    PostMortemScheduler sched(prog, 4);
    std::map<std::uint64_t, int> seen;
    const auto stats = sched.run([&](const MpRef &r) {
        if (!r.sync && !region::isPrivate(r.addr))
            ++seen[r.addr];
    });
    EXPECT_EQ(seen.size(), 50u);
    for (const auto &[addr, n] : seen)
        EXPECT_EQ(n, 1) << std::hex << addr;
    EXPECT_EQ(stats.barriers.size(), 1u);
}

TEST(PostMortem, RoundRobinOneRefPerProcPerCycle)
{
    const auto prog = oneLoop(8, 20);
    PostMortemScheduler sched(prog, 4);
    std::map<std::pair<std::uint64_t, std::uint16_t>, int> per_cycle;
    sched.run([&](const MpRef &r) {
        ++per_cycle[{r.cycle, r.proc}];
    });
    for (const auto &[key, n] : per_cycle)
        EXPECT_EQ(n, 1) << "cycle " << key.first << " proc "
                        << key.second;
}

TEST(PostMortem, CyclesAreMonotonic)
{
    const auto prog = oneLoop(8, 20);
    PostMortemScheduler sched(prog, 4);
    std::uint64_t last = 0;
    sched.run([&](const MpRef &r) {
        EXPECT_GE(r.cycle, last);
        last = r.cycle;
    });
}

TEST(PostMortem, SingleProcessorRunsEverything)
{
    const auto prog = oneLoop(6, 10);
    PostMortemScheduler sched(prog, 1);
    const auto stats = sched.run();
    EXPECT_EQ(stats.dataRefs, 60u);
    // Task grabs: 6 + 1 failing, barrier F&A, flag set.
    EXPECT_GE(stats.syncRefs, 8u);
}

TEST(PostMortem, MoreProcsFewerCycles)
{
    const auto prog = oneLoop(32, 50);
    const auto s1 = PostMortemScheduler(prog, 1).run();
    const auto s8 = PostMortemScheduler(prog, 8).run();
    EXPECT_LT(s8.cycles, s1.cycles / 4);
}

TEST(PostMortem, PrivateAddressesRemappedPerProc)
{
    MarkedTrace t;
    t.name = "priv";
    t.records.push_back(MarkedRecord::marker(K::ReplicateBegin));
    t.records.push_back(MarkedRecord::read(region::PRIVATE + 8));
    t.records.push_back(MarkedRecord::marker(K::ReplicateEnd));
    const auto prog = SpmdProgram::parse(t);

    PostMortemScheduler sched(prog, 4);
    std::set<std::uint64_t> addrs;
    sched.run([&](const MpRef &r) {
        if (!r.sync)
            addrs.insert(r.addr);
    });
    EXPECT_EQ(addrs.size(), 4u) << "each processor has its own copy";
}

TEST(PostMortem, ReplicateExecutedByAll)
{
    MarkedTrace t;
    t.name = "rep";
    t.records.push_back(MarkedRecord::marker(K::ReplicateBegin));
    for (int i = 0; i < 5; ++i)
        t.records.push_back(MarkedRecord::read(region::SHARED + i * 8));
    t.records.push_back(MarkedRecord::marker(K::ReplicateEnd));
    const auto prog = SpmdProgram::parse(t);

    const auto stats = PostMortemScheduler(prog, 8).run();
    EXPECT_EQ(stats.dataRefs, 40u) << "5 refs x 8 processors";
    EXPECT_EQ(stats.syncRefs, 0u) << "no barrier after replicate";
}

TEST(PostMortem, SerialExecutedByExactlyOne)
{
    MarkedTrace t;
    t.name = "ser";
    t.records.push_back(MarkedRecord::marker(K::SerialBegin));
    for (int i = 0; i < 10; ++i)
        t.records.push_back(
            MarkedRecord::write(region::SHARED + i * 8));
    t.records.push_back(MarkedRecord::marker(K::SerialEnd));
    const auto prog = SpmdProgram::parse(t);

    std::map<std::uint64_t, int> writes;
    const auto stats =
        PostMortemScheduler(prog, 8).run([&](const MpRef &r) {
            if (!r.sync && r.write)
                ++writes[r.addr];
        });
    EXPECT_EQ(writes.size(), 10u);
    for (const auto &[a, n] : writes)
        EXPECT_EQ(n, 1);
    EXPECT_EQ(stats.barriers.size(), 1u) << "the wait is recorded";
}

TEST(PostMortem, BarrierIntervalOrdering)
{
    const auto prog =
        SpmdProgram::parse(makeAppTrace("simple", 0.05));
    const auto stats = PostMortemScheduler(prog, 8).run();
    ASSERT_GT(stats.barriers.size(), 1u);
    for (std::size_t i = 0; i < stats.barriers.size(); ++i) {
        const auto &b = stats.barriers[i];
        EXPECT_LE(b.firstArrival, b.lastArrival);
        EXPECT_LE(b.lastArrival, b.setTime);
        if (i) {
            EXPECT_GE(b.setTime, stats.barriers[i - 1].setTime);
        }
    }
}

TEST(PostMortem, SpinGapPacesFlagPolls)
{
    // With spinGapRefs = G, a waiting processor's flag polls are G+1
    // cycles apart; with 0 it polls every cycle.
    const auto prog = oneLoop(1, 400); // 1 task: others wait long
    std::uint64_t polls_gap0 = 0, polls_gap4 = 0;

    ScheduleConfig cfg0;
    cfg0.spinGapRefs = 0;
    PostMortemScheduler(prog, 4, cfg0).run([&](const MpRef &r) {
        polls_gap0 += (r.sync && !r.write) ? 1 : 0;
    });

    ScheduleConfig cfg4;
    cfg4.spinGapRefs = 4;
    PostMortemScheduler(prog, 4, cfg4).run([&](const MpRef &r) {
        polls_gap4 += (r.sync && !r.write) ? 1 : 0;
    });

    EXPECT_GT(polls_gap0, polls_gap4 * 3);
}

TEST(PostMortem, RmwSerializationOrdersGrabs)
{
    // With serialization on, two same-cycle F&As cannot happen: sync
    // RMWs to one address never share a cycle.
    const auto prog = oneLoop(16, 3);
    ScheduleConfig cfg;
    cfg.serializeRmw = true;
    std::map<std::uint64_t, std::set<std::uint64_t>> rmw_cycles;
    PostMortemScheduler(prog, 8, cfg).run([&](const MpRef &r) {
        if (r.rmw) {
            auto [it, fresh] = rmw_cycles[r.addr].insert(r.cycle);
            EXPECT_TRUE(fresh) << "two RMWs to " << std::hex << r.addr
                               << " in cycle " << std::dec << r.cycle;
        }
    });
}

TEST(PostMortem, EmptyStatsAreWellDefined)
{
    // A run with zero barriers must not divide by zero anywhere.
    const ScheduleStats stats;
    EXPECT_EQ(stats.averageA(), 0.0);
    EXPECT_EQ(stats.averageE(), 0.0);
    EXPECT_EQ(stats.syncFraction(), 0.0);
    EXPECT_EQ(stats.arrivalDistribution(5).total(), 0u);
}

TEST(PostMortem, SingleBarrierHasNoInterBarrierGap)
{
    // averageE is defined between consecutive barriers; with fewer
    // than two it must be exactly zero, not NaN.
    ScheduleStats stats;
    stats.barriers.emplace_back();
    EXPECT_EQ(stats.averageE(), 0.0);
}

TEST(PostMortem, SingleProcSingleRefProgram)
{
    // Smallest possible program: one task with one reference on one
    // processor.
    const auto prog = oneLoop(1, 1);
    const auto stats = PostMortemScheduler(prog, 1).run();
    EXPECT_EQ(stats.dataRefs, 1u);
    EXPECT_GT(stats.cycles, 0u);
    // One processor: every barrier window is degenerate, and the
    // arrival histogram therefore stays empty.
    EXPECT_EQ(stats.arrivalDistribution(4).total(), 0u);
    EXPECT_GE(stats.averageA(), 0.0);
}

TEST(PostMortem, ZeroBinWindowsSkippedInArrivalDistribution)
{
    // A barrier whose first and last arrival coincide contributes no
    // normalized samples (the window has zero width).
    ScheduleStats stats;
    BarrierInterval b;
    b.firstArrival = 10;
    b.lastArrival = 10;
    b.arrivals = {10, 10};
    stats.barriers.push_back(b);
    EXPECT_EQ(stats.arrivalDistribution(8).total(), 0u);
}

TEST(PostMortem, AverageAandEConsistency)
{
    const auto prog =
        SpmdProgram::parse(makeAppTrace("weather", 0.1));
    const auto stats = PostMortemScheduler(prog, 16).run();
    EXPECT_GT(stats.averageA(), 0.0);
    EXPECT_GT(stats.averageE(), 0.0);
    EXPECT_LT(stats.averageA() + stats.averageE(),
              static_cast<double>(stats.cycles));
}

TEST(PostMortem, ArrivalDistributionMassConserved)
{
    const auto prog =
        SpmdProgram::parse(makeAppTrace("simple", 0.05));
    const auto stats = PostMortemScheduler(prog, 16).run();
    const auto hist = stats.arrivalDistribution(10);
    std::uint64_t expected = 0;
    for (const auto &b : stats.barriers) {
        if (b.lastArrival > b.firstArrival)
            expected += b.arrivals.size();
    }
    EXPECT_EQ(hist.total(), expected);
}

TEST(PostMortem, SinklessRunMatchesSinkRun)
{
    const auto prog = oneLoop(12, 7);
    const auto a = PostMortemScheduler(prog, 4).run();
    std::uint64_t count = 0;
    const auto b = PostMortemScheduler(prog, 4).run(
        [&](const MpRef &) { ++count; });
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dataRefs + a.syncRefs, count);
}

/** Property sweep over processor counts: invariants hold for any P. */
class SchedulerSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SchedulerSweep, WorkConservedAcrossProcCounts)
{
    const std::uint32_t nprocs = GetParam();
    const auto prog = oneLoop(13, 9); // awkward non-multiple counts
    std::uint64_t shared_reads = 0;
    PostMortemScheduler(prog, nprocs).run([&](const MpRef &r) {
        if (!r.sync && !region::isPrivate(r.addr))
            ++shared_reads;
    });
    EXPECT_EQ(shared_reads, 13u * 9u);
}

TEST_P(SchedulerSweep, EveryBarrierHasAllArrivals)
{
    const std::uint32_t nprocs = GetParam();
    const auto prog =
        SpmdProgram::parse(makeAppTrace("simple", 0.02));
    const auto stats = PostMortemScheduler(prog, nprocs).run();
    for (const auto &b : stats.barriers) {
        if (b.isWait) {
            // Serial waits record only pre-release arrivals.
            EXPECT_LE(b.arrivals.size(), nprocs);
        } else {
            // Parallel barriers collect every processor.
            EXPECT_EQ(b.arrivals.size(), nprocs);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Procs, SchedulerSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 64u));

TEST(PostMortem, AppLevelBackoffCutsSyncRefs)
{
    // Application barriers with exponential backoff poll far less.
    const auto prog = oneLoop(1, 600); // one worker, others wait
    ScheduleConfig plain;
    ScheduleConfig backed;
    backed.pollBackoff =
        absync::core::BackoffConfig::exponentialFlag(2);

    const auto s_plain = PostMortemScheduler(prog, 8, plain).run();
    const auto s_backed = PostMortemScheduler(prog, 8, backed).run();
    EXPECT_LT(s_backed.syncRefs, s_plain.syncRefs / 3);
    // Work is unchanged; makespan may grow from overshoot, bounded.
    EXPECT_LT(s_backed.cycles, s_plain.cycles * 4);
}

TEST(PostMortem, AppLevelVariableBackoffDelaysFirstPoll)
{
    const auto prog = oneLoop(1, 600);
    ScheduleConfig var;
    var.pollBackoff = absync::core::BackoffConfig::variableOnly();
    const auto s_plain = PostMortemScheduler(prog, 8).run();
    const auto s_var = PostMortemScheduler(prog, 8, var).run();
    EXPECT_LE(s_var.syncRefs, s_plain.syncRefs);
}

TEST(PostMortem, MaxPollGapBoundsOvershoot)
{
    const auto prog = oneLoop(1, 50000);
    ScheduleConfig cfg;
    cfg.pollBackoff = absync::core::BackoffConfig::exponentialFlag(8);
    cfg.maxPollGap = 64;
    const auto st = PostMortemScheduler(prog, 4, cfg).run();
    // With the gap capped at 64, waiters poll at least every 65
    // cycles, so sync refs are bounded below accordingly.
    EXPECT_GT(st.syncRefs, st.cycles / 70);
}

TEST(PostMortem, RandomProgramsConserveWork)
{
    // Property: for pseudo-random SPMD programs, every shared
    // reference of every task is replayed exactly once, at any
    // processor count.
    absync::support::Rng rng(2026);
    for (int trial = 0; trial < 8; ++trial) {
        MarkedTrace t;
        t.name = "rand";
        std::uint64_t expected = 0;
        const int sections = 1 + static_cast<int>(rng.index(4));
        for (int s = 0; s < sections; ++s) {
            const auto kind = rng.index(3);
            if (kind == 0) {
                const auto tasks =
                    1 + static_cast<std::uint32_t>(rng.index(12));
                t.records.push_back(MarkedRecord::marker(
                    K::ParallelBegin, tasks));
                for (std::uint32_t k = 0; k < tasks; ++k) {
                    t.records.push_back(
                        MarkedRecord::marker(K::TaskBegin));
                    const auto refs = rng.index(20);
                    for (std::uint64_t r = 0; r < refs; ++r) {
                        t.records.push_back(MarkedRecord::write(
                            region::SHARED + (expected++) * 8));
                    }
                }
                t.records.push_back(
                    MarkedRecord::marker(K::ParallelEnd));
            } else if (kind == 1) {
                t.records.push_back(
                    MarkedRecord::marker(K::SerialBegin));
                const auto refs = rng.index(30);
                for (std::uint64_t r = 0; r < refs; ++r) {
                    t.records.push_back(MarkedRecord::write(
                        region::SHARED + (expected++) * 8));
                }
                t.records.push_back(
                    MarkedRecord::marker(K::SerialEnd));
            } else {
                t.records.push_back(
                    MarkedRecord::marker(K::ReplicateBegin));
                t.records.push_back(
                    MarkedRecord::read(region::PRIVATE + 8));
                t.records.push_back(
                    MarkedRecord::marker(K::ReplicateEnd));
            }
        }
        const auto prog = SpmdProgram::parse(t);
        const auto procs =
            1 + static_cast<std::uint32_t>(rng.index(16));
        std::uint64_t seen = 0;
        PostMortemScheduler(prog, procs).run([&](const MpRef &r) {
            if (!r.sync && r.write &&
                !region::isPrivate(r.addr)) {
                ++seen;
            }
        });
        EXPECT_EQ(seen, expected)
            << "trial " << trial << " procs " << procs;
    }
}
