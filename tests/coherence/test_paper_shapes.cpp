/** @file Integration tests locking in the paper's coherence-side
 *        shapes (Tables 1-2, Figure 1) end to end: generator ->
 *        scheduler -> coherence simulator.  These are the claims
 *        EXPERIMENTS.md reports; if a refactor breaks a shape, this
 *        suite fails rather than the benches silently drifting. */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "coherence/coherence_sim.hpp"
#include "trace/apps.hpp"
#include "trace/postmortem.hpp"
#include "trace/spmd.hpp"

using namespace absync;

namespace
{

/** Cache of parsed programs: generation dominates test time. */
const trace::SpmdProgram &
program(const std::string &app)
{
    static std::map<std::string, trace::SpmdProgram> cache;
    auto it = cache.find(app);
    if (it == cache.end()) {
        it = cache
                 .emplace(app, trace::SpmdProgram::parse(
                                   trace::makeAppTrace(app, 0.1)))
                 .first;
    }
    return it->second;
}

coherence::CoherenceStats
simulate(const std::string &app, std::uint32_t pointers,
         bool uncached_sync)
{
    coherence::CoherenceConfig cfg;
    cfg.processors = 64;
    cfg.pointerLimit = pointers;
    cfg.uncachedSync = uncached_sync;
    coherence::CoherenceSimulator sim(cfg);
    trace::PostMortemScheduler(program(app), 64)
        .run([&](const trace::MpRef &r) { sim.access(r); });
    return sim.stats();
}

} // namespace

TEST(PaperShapes, Table1SyncRefsAlmostAlwaysInvalidate)
{
    // Paper Table 1: ~99 % of sync references invalidate under
    // limited pointers, far above non-sync.
    for (const char *app : {"fft", "simple", "weather"}) {
        const auto st = simulate(app, 3, false);
        EXPECT_GT(st.syncInvalidatingFraction(), 0.95) << app;
        EXPECT_GT(st.syncInvalidatingFraction(),
                  5.0 * st.nonSyncInvalidatingFraction())
            << app;
    }
}

TEST(PaperShapes, Table1FullMapEasesSyncInvalidations)
{
    for (const char *app : {"simple", "weather"}) {
        const auto limited = simulate(app, 3, false);
        const auto full = simulate(app, 0, false);
        EXPECT_LT(full.syncInvalidatingFraction(),
                  limited.syncInvalidatingFraction())
            << app;
    }
}

TEST(PaperShapes, Table1NonSyncEasesWithMorePointers)
{
    for (const char *app : {"fft", "simple", "weather"}) {
        const auto p2 = simulate(app, 2, false);
        const auto p5 = simulate(app, 5, false);
        EXPECT_LE(p5.nonSyncInvalidatingFraction(),
                  p2.nonSyncInvalidatingFraction() + 0.01)
            << app;
    }
}

TEST(PaperShapes, Table2TrafficOrdering)
{
    // Paper Table 2: WEATHER >> SIMPLE >> FFT uncached sync traffic.
    const double fft = simulate("fft", 4, true).syncTrafficFraction();
    const double simple =
        simulate("simple", 4, true).syncTrafficFraction();
    const double weather =
        simulate("weather", 4, true).syncTrafficFraction();
    EXPECT_GT(weather, simple);
    EXPECT_GT(simple, fft);
    EXPECT_GT(weather, 0.30) << "paper: 55-60 %";
    EXPECT_LT(fft, 0.10) << "paper: 1.3-1.5 %";
}

TEST(PaperShapes, Figure1MassBelowThreeInvalidations)
{
    // Paper Fig 1: >95 % of invalidating writes touch <= 3 caches,
    // with a deep tail caused by synchronization.
    const auto st = simulate("simple", 0, false);
    const auto &h = st.writeCleanInvalHist;
    ASSERT_GT(h.total(), 0u);
    EXPECT_GT(h.cumulativeFraction(3), 0.95);
    EXPECT_GT(h.maxValue(), 12u)
        << "the barrier release must produce a deep event";
}

TEST(PaperShapes, CachedSyncFractionIsSmall)
{
    // With caching, counted sync refs are a small share (the
    // paper's 0.2-7.9 % range).
    for (const char *app : {"fft", "simple", "weather"}) {
        const auto st = simulate(app, 4, false);
        const double frac =
            static_cast<double>(st.syncRefs) /
            static_cast<double>(st.syncRefs + st.nonSyncRefs);
        EXPECT_LT(frac, 0.12) << app;
    }
}

TEST(PaperShapes, LocalSpinningNeedsEnoughPointers)
{
    // Under a limited directory the pollers' copies displace each
    // other, so nearly every poll misses (no cache-local spinning) —
    // the Section 2.1 pathology.  A full map lets waiters spin in
    // their caches.
    const auto limited = simulate("simple", 4, false);
    const auto full = simulate("simple", 0, false);
    EXPECT_LT(limited.localSpins, limited.syncRefs);
    EXPECT_GT(full.localSpins, full.syncRefs);
}
