/** @file Unit tests for the direct-mapped cache tag store. */

#include <gtest/gtest.h>

#include "coherence/cache.hpp"

using absync::coherence::DirectMappedCache;

TEST(Cache, Geometry)
{
    DirectMappedCache c(256 * 1024, 16);
    EXPECT_EQ(c.lines(), 16384u);
    EXPECT_EQ(c.blockShift(), 4u);
    EXPECT_EQ(c.blockOf(0x12345), 0x1234u);
}

TEST(Cache, MissThenHit)
{
    DirectMappedCache c(1024, 16);
    const auto b = c.blockOf(0x4000);
    EXPECT_FALSE(c.contains(b));
    EXPECT_FALSE(c.insert(b).has_value());
    EXPECT_TRUE(c.contains(b));
}

TEST(Cache, ConflictEviction)
{
    DirectMappedCache c(1024, 16); // 64 lines
    const auto b1 = c.blockOf(0x0000);
    const auto b2 = c.blockOf(0x0000 + 1024); // same index
    c.insert(b1);
    const auto evicted = c.insert(b2);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, b1);
    EXPECT_FALSE(c.contains(b1));
    EXPECT_TRUE(c.contains(b2));
}

TEST(Cache, ReinsertSameBlockNoEviction)
{
    DirectMappedCache c(1024, 16);
    const auto b = c.blockOf(0x40);
    c.insert(b);
    EXPECT_FALSE(c.insert(b).has_value());
}

TEST(Cache, DistinctIndicesCoexist)
{
    DirectMappedCache c(1024, 16);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_FALSE(c.insert(i).has_value());
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_TRUE(c.contains(i));
}

TEST(Cache, Invalidate)
{
    DirectMappedCache c(1024, 16);
    const auto b = c.blockOf(0x80);
    c.insert(b);
    c.invalidate(b);
    EXPECT_FALSE(c.contains(b));
    // Invalidating a non-resident block is a no-op.
    c.invalidate(c.blockOf(0x9000));
}

TEST(Cache, InvalidateWrongTagIsNoOp)
{
    DirectMappedCache c(1024, 16);
    const auto b1 = c.blockOf(0x0000);
    const auto b2 = c.blockOf(0x0000 + 1024); // same index, other tag
    c.insert(b1);
    c.invalidate(b2);
    EXPECT_TRUE(c.contains(b1));
}

TEST(Cache, Clear)
{
    DirectMappedCache c(1024, 16);
    c.insert(1);
    c.insert(2);
    c.clear();
    EXPECT_FALSE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
}
