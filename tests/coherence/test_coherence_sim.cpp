/** @file Unit and invariant tests for the coherence simulator. */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/coherence_sim.hpp"

using namespace absync::coherence;
using absync::trace::MpRef;
namespace region = absync::trace::region;

namespace
{

MpRef
ref(std::uint16_t proc, std::uint64_t addr, bool write,
    bool sync = false)
{
    return MpRef{0, addr, proc, write, sync, write && sync};
}

CoherenceConfig
smallConfig(std::uint32_t procs = 4, std::uint32_t pointers = 0)
{
    CoherenceConfig cfg;
    cfg.processors = procs;
    cfg.pointerLimit = pointers;
    cfg.cacheBytes = 4096;
    cfg.blockBytes = 16;
    return cfg;
}

} // namespace

TEST(CoherenceSim, ColdMissCostsTwoTransactions)
{
    CoherenceSimulator sim(smallConfig());
    sim.access(ref(0, region::SHARED, false));
    EXPECT_EQ(sim.stats().nonSyncTransactions, 2u);
    EXPECT_EQ(sim.stats().misses, 1u);
    // Second read hits: no new traffic.
    sim.access(ref(0, region::SHARED, false));
    EXPECT_EQ(sim.stats().nonSyncTransactions, 2u);
    EXPECT_EQ(sim.stats().misses, 1u);
}

TEST(CoherenceSim, WriteHitToCleanInvalidatesSharers)
{
    CoherenceSimulator sim(smallConfig());
    // Three readers, then one of them writes.
    sim.access(ref(0, region::SHARED, false));
    sim.access(ref(1, region::SHARED, false));
    sim.access(ref(2, region::SHARED, false));
    const auto before = sim.stats().invalMessages;
    sim.access(ref(0, region::SHARED, true));
    EXPECT_EQ(sim.stats().invalMessages - before, 2u);
    EXPECT_EQ(sim.stats().writeCleanInvalHist.count(2), 1u);
    // The invalidated copies really are gone: their next read misses.
    const auto misses = sim.stats().misses;
    sim.access(ref(1, region::SHARED, false));
    EXPECT_EQ(sim.stats().misses, misses + 1);
}

TEST(CoherenceSim, RepeatWriteByOwnerIsFree)
{
    CoherenceSimulator sim(smallConfig());
    sim.access(ref(0, region::SHARED, true));
    const auto tx = sim.stats().nonSyncTransactions;
    sim.access(ref(0, region::SHARED, true));
    sim.access(ref(0, region::SHARED, false));
    EXPECT_EQ(sim.stats().nonSyncTransactions, tx);
}

TEST(CoherenceSim, ReadOfDirtyBlockFetchesFromOwner)
{
    CoherenceSimulator sim(smallConfig());
    sim.access(ref(0, region::SHARED, true)); // dirty in 0
    const auto tx = sim.stats().nonSyncTransactions;
    sim.access(ref(1, region::SHARED, false));
    // Miss (2) + dirty fetch/writeback (2).
    EXPECT_EQ(sim.stats().nonSyncTransactions - tx, 4u);
}

TEST(CoherenceSim, PointerLimitForcesInvalidationOnRead)
{
    CoherenceSimulator sim(smallConfig(4, 2));
    sim.access(ref(0, region::SHARED, false));
    sim.access(ref(1, region::SHARED, false));
    const auto inv = sim.stats().invalMessages;
    sim.access(ref(2, region::SHARED, false)); // third sharer
    EXPECT_EQ(sim.stats().invalMessages - inv, 1u)
        << "DiriNB displaces a copy to admit the third sharer";
}

TEST(CoherenceSim, FullMapReadsNeverInvalidate)
{
    CoherenceSimulator sim(smallConfig(4, 0));
    for (std::uint16_t p = 0; p < 4; ++p)
        sim.access(ref(p, region::SHARED, false));
    EXPECT_EQ(sim.stats().invalMessages, 0u);
}

TEST(CoherenceSim, UncachedSyncCostsTwoEach)
{
    auto cfg = smallConfig();
    cfg.uncachedSync = true;
    CoherenceSimulator sim(cfg);
    for (int i = 0; i < 5; ++i)
        sim.access(ref(0, region::SYNC, false, true));
    EXPECT_EQ(sim.stats().syncTransactions, 10u);
    EXPECT_EQ(sim.stats().syncRefs, 5u);
    EXPECT_EQ(sim.stats().invalMessages, 0u);
}

TEST(CoherenceSim, CachedSyncLocalSpinsNotCounted)
{
    CoherenceSimulator sim(smallConfig());
    // First poll misses and installs the flag; re-polls are local.
    sim.access(ref(0, region::SYNC, false, true));
    EXPECT_EQ(sim.stats().syncRefs, 1u);
    for (int i = 0; i < 10; ++i)
        sim.access(ref(0, region::SYNC, false, true));
    EXPECT_EQ(sim.stats().syncRefs, 1u);
    EXPECT_EQ(sim.stats().localSpins, 10u);
    // A flag write invalidates the spinner, whose next poll counts.
    sim.access(ref(1, region::SYNC, true, true));
    sim.access(ref(0, region::SYNC, false, true));
    EXPECT_EQ(sim.stats().syncRefs, 3u);
}

TEST(CoherenceSim, UncachedSharedBypassesEverything)
{
    auto cfg = smallConfig();
    cfg.uncachedShared = true;
    CoherenceSimulator sim(cfg);
    sim.access(ref(0, region::SHARED, false));
    sim.access(ref(0, region::SHARED, false));
    EXPECT_EQ(sim.stats().nonSyncTransactions, 4u)
        << "every shared reference goes to memory";
    // Private still caches.
    sim.access(ref(0, region::PRIVATE, false));
    sim.access(ref(0, region::PRIVATE, false));
    EXPECT_EQ(sim.stats().nonSyncTransactions, 6u)
        << "private misses once, then hits";
}

TEST(CoherenceSim, ConflictEvictionUpdatesDirectory)
{
    // Two shared blocks with the same cache index: loading the second
    // evicts the first; a later write to the first by another
    // processor must find no stale sharers to invalidate.
    auto cfg = smallConfig();
    CoherenceSimulator sim(cfg);
    const std::uint64_t a1 = region::SHARED;
    const std::uint64_t a2 = region::SHARED + cfg.cacheBytes;
    sim.access(ref(0, a1, false));
    sim.access(ref(0, a2, false)); // evicts a1 from proc 0
    const auto inv = sim.stats().invalMessages;
    sim.access(ref(1, a1, true));
    EXPECT_EQ(sim.stats().invalMessages, inv)
        << "evicted copy must not be re-invalidated";
}

TEST(CoherenceSim, DirtyEvictionWritesBack)
{
    auto cfg = smallConfig();
    CoherenceSimulator sim(cfg);
    const std::uint64_t a1 = region::SHARED;
    const std::uint64_t a2 = region::SHARED + cfg.cacheBytes;
    sim.access(ref(0, a1, true)); // dirty
    const auto tx = sim.stats().nonSyncTransactions;
    sim.access(ref(0, a2, false)); // conflict-evicts dirty a1
    // Miss (2) + writeback (2).
    EXPECT_EQ(sim.stats().nonSyncTransactions - tx, 4u);
}

TEST(CoherenceSim, InvalidatingFractionCounters)
{
    CoherenceSimulator sim(smallConfig());
    sim.access(ref(0, region::SHARED, false));
    sim.access(ref(1, region::SHARED, false));
    sim.access(ref(1, region::SHARED + 64, false));
    sim.access(ref(0, region::SHARED, true)); // invalidates proc 1
    const auto &st = sim.stats();
    EXPECT_EQ(st.nonSyncRefs, 4u);
    EXPECT_EQ(st.nonSyncRefsInvalidating, 1u);
    EXPECT_DOUBLE_EQ(st.nonSyncInvalidatingFraction(), 0.25);
}

TEST(CoherenceSim, WriteMissInvalidatesAllSharers)
{
    CoherenceSimulator sim(smallConfig());
    sim.access(ref(0, region::SHARED, false));
    sim.access(ref(1, region::SHARED, false));
    sim.access(ref(2, region::SHARED, false));
    const auto inv = sim.stats().invalMessages;
    sim.access(ref(3, region::SHARED, true));
    EXPECT_EQ(sim.stats().invalMessages - inv, 3u);
}

/** Invariant sweep across pointer limits: dirty blocks have exactly
 *  one sharer; sharer count never exceeds the limit. */
class PointerSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PointerSweep, SharerCountBounded)
{
    const std::uint32_t limit = GetParam();
    auto cfg = smallConfig(8, limit);
    CoherenceSimulator sim(cfg);
    // A pseudo-random mix of reads and writes by 8 processors over a
    // handful of blocks.
    std::uint32_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x = x * 1664525 + 1013904223;
        const std::uint16_t p = (x >> 8) % 8;
        const std::uint64_t addr =
            region::SHARED + ((x >> 16) % 16) * 16;
        const bool write = (x >> 28) % 4 == 0;
        sim.access(ref(p, addr, write));
    }
    SUCCEED(); // internal asserts in Directory would have fired
    if (limit != 0) {
        EXPECT_GT(sim.stats().invalMessages, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Limits, PointerSweep,
                         ::testing::Values(0u, 2u, 3u, 4u, 5u));

TEST(CoherenceSim, DirIBReadsNeverInvalidate)
{
    auto cfg = smallConfig(6, 2);
    cfg.broadcastOverflow = true;
    CoherenceSimulator sim(cfg);
    for (std::uint16_t p = 0; p < 6; ++p)
        sim.access(ref(p, region::SHARED, false));
    EXPECT_EQ(sim.stats().invalMessages, 0u)
        << "Dir_iB absorbs read overflow without invalidations";
}

TEST(CoherenceSim, DirIBWriteBroadcasts)
{
    auto cfg = smallConfig(6, 2);
    cfg.broadcastOverflow = true;
    CoherenceSimulator sim(cfg);
    for (std::uint16_t p = 0; p < 6; ++p)
        sim.access(ref(p, region::SHARED, false));
    const auto inv = sim.stats().invalMessages;
    sim.access(ref(0, region::SHARED, true));
    EXPECT_EQ(sim.stats().invalMessages - inv, 5u)
        << "the deferred write invalidates every other cache";
    // Untracked copies really are gone.
    const auto misses = sim.stats().misses;
    sim.access(ref(5, region::SHARED, false));
    EXPECT_EQ(sim.stats().misses, misses + 1);
}

TEST(CoherenceSim, DirIBBitClearsAfterBroadcast)
{
    auto cfg = smallConfig(4, 2);
    cfg.broadcastOverflow = true;
    CoherenceSimulator sim(cfg);
    for (std::uint16_t p = 0; p < 4; ++p)
        sim.access(ref(p, region::SHARED, false));
    sim.access(ref(0, region::SHARED, true)); // broadcast
    const auto inv = sim.stats().invalMessages;
    sim.access(ref(0, region::SHARED, true)); // dirty hit: free
    EXPECT_EQ(sim.stats().invalMessages, inv);
}
