/** @file Unit tests for the limited-pointer directory. */

#include <gtest/gtest.h>

#include "coherence/directory.hpp"

using absync::coherence::Directory;
using absync::coherence::DirOverflow;

TEST(Directory, FullMapUnlimited)
{
    Directory d(0);
    for (std::uint16_t p = 0; p < 100; ++p)
        EXPECT_EQ(d.addSharer(1, p), -1);
    EXPECT_EQ(d.entry(1).sharers.size(), 100u);
}

TEST(Directory, PointerLimitDisplacesOldest)
{
    Directory d(2);
    EXPECT_EQ(d.addSharer(1, 10), -1);
    EXPECT_EQ(d.addSharer(1, 11), -1);
    EXPECT_EQ(d.addSharer(1, 12), 10) << "oldest sharer displaced";
    const auto &e = d.entry(1);
    EXPECT_EQ(e.sharers.size(), 2u);
    EXPECT_TRUE(e.isSharedBy(11));
    EXPECT_TRUE(e.isSharedBy(12));
    EXPECT_FALSE(e.isSharedBy(10));
}

TEST(Directory, RemoveSharer)
{
    Directory d(4);
    d.addSharer(5, 1);
    d.addSharer(5, 2);
    d.removeSharer(5, 1);
    EXPECT_FALSE(d.entry(5).isSharedBy(1));
    EXPECT_TRUE(d.entry(5).isSharedBy(2));
    // Removing a non-sharer or untouched block is harmless.
    d.removeSharer(5, 9);
    d.removeSharer(77, 1);
}

TEST(Directory, MakeOwnerInvalidatesOthers)
{
    Directory d(4);
    d.addSharer(3, 1);
    d.addSharer(3, 2);
    d.addSharer(3, 7);
    const auto inv = d.makeOwner(3, 2);
    ASSERT_EQ(inv.size(), 2u);
    EXPECT_TRUE((inv[0] == 1 && inv[1] == 7) ||
                (inv[0] == 7 && inv[1] == 1));
    const auto &e = d.entry(3);
    EXPECT_TRUE(e.dirty);
    ASSERT_EQ(e.sharers.size(), 1u);
    EXPECT_EQ(e.sharers[0], 2);
}

TEST(Directory, MakeOwnerByNonSharer)
{
    Directory d(4);
    d.addSharer(3, 1);
    const auto inv = d.makeOwner(3, 9);
    ASSERT_EQ(inv.size(), 1u);
    EXPECT_EQ(inv[0], 1);
    EXPECT_TRUE(d.entry(3).isSharedBy(9));
}

TEST(Directory, Cleanse)
{
    Directory d(4);
    d.makeOwner(2, 5);
    EXPECT_TRUE(d.entry(2).dirty);
    d.cleanse(2);
    EXPECT_FALSE(d.entry(2).dirty);
    EXPECT_TRUE(d.entry(2).isSharedBy(5)) << "owner stays a sharer";
}

TEST(Directory, DirtyClearedWhenLastSharerLeaves)
{
    Directory d(4);
    d.makeOwner(2, 5);
    d.removeSharer(2, 5);
    EXPECT_FALSE(d.entry(2).dirty);
    EXPECT_TRUE(d.entry(2).sharers.empty());
}

TEST(Directory, FindDoesNotCreate)
{
    Directory d(4);
    EXPECT_EQ(d.find(42), nullptr);
    EXPECT_EQ(d.liveEntries(), 0u);
    d.addSharer(42, 1);
    EXPECT_NE(d.find(42), nullptr);
    EXPECT_EQ(d.liveEntries(), 1u);
}

TEST(Directory, BroadcastOverflowSetsBit)
{
    Directory d(2, DirOverflow::Broadcast);
    EXPECT_EQ(d.addSharer(1, 10), -1);
    EXPECT_EQ(d.addSharer(1, 11), -1);
    EXPECT_FALSE(d.entry(1).broadcastBit);
    EXPECT_EQ(d.addSharer(1, 12), -1)
        << "Dir_iB never displaces a copy";
    EXPECT_TRUE(d.entry(1).broadcastBit);
    EXPECT_EQ(d.entry(1).sharers.size(), 2u)
        << "the overflowing sharer goes untracked";
}

TEST(Directory, NoBroadcastIsDefault)
{
    Directory d(2);
    EXPECT_EQ(d.overflow(), DirOverflow::NoBroadcast);
    d.addSharer(1, 10);
    d.addSharer(1, 11);
    EXPECT_EQ(d.addSharer(1, 12), 10);
    EXPECT_FALSE(d.entry(1).broadcastBit);
}
