/** @file Tests for EPEX-style self-scheduled parallel loops. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/self_schedule.hpp"

using namespace absync::runtime;

TEST(SelfSchedule, EveryIterationExecutedOnce)
{
    constexpr std::uint32_t kIters = 200;
    std::vector<std::atomic<int>> hit(kIters);
    TeamRunner team(4);
    team.run([&](TeamContext &ctx) {
        ctx.parallelFor(kIters, [&](std::uint32_t i) {
            hit[i].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (std::uint32_t i = 0; i < kIters; ++i)
        EXPECT_EQ(hit[i].load(), 1) << "iteration " << i;
}

TEST(SelfSchedule, ConsecutiveLoopsIndependent)
{
    std::atomic<std::uint64_t> sum{0};
    TeamRunner team(4);
    team.run([&](TeamContext &ctx) {
        ctx.parallelFor(100, [&](std::uint32_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        ctx.parallelFor(50, [&](std::uint32_t i) {
            sum.fetch_add(1000 + i, std::memory_order_relaxed);
        });
    });
    const std::uint64_t expect = 99 * 100 / 2 +
                                 50 * 1000 + 49 * 50 / 2;
    EXPECT_EQ(sum.load(), expect);
}

TEST(SelfSchedule, SerialRunsExactlyOnce)
{
    std::atomic<int> runs{0};
    TeamRunner team(8);
    team.run([&](TeamContext &ctx) {
        for (int k = 0; k < 10; ++k)
            ctx.serial([&] { runs.fetch_add(1); });
    });
    EXPECT_EQ(runs.load(), 10);
}

TEST(SelfSchedule, BarrierOrdersPhases)
{
    // After parallelFor returns on any thread, all iterations of that
    // loop are complete.
    constexpr std::uint32_t kIters = 64;
    std::vector<std::atomic<int>> a(kIters);
    std::atomic<int> violations{0};
    TeamRunner team(4);
    team.run([&](TeamContext &ctx) {
        ctx.parallelFor(kIters, [&](std::uint32_t i) {
            a[i].store(1, std::memory_order_release);
        });
        for (std::uint32_t i = 0; i < kIters; ++i) {
            if (a[i].load(std::memory_order_acquire) != 1)
                violations.fetch_add(1);
        }
    });
    EXPECT_EQ(violations.load(), 0);
}

TEST(SelfSchedule, SingleThreadTeam)
{
    std::atomic<int> n{0};
    TeamRunner team(1);
    team.run([&](TeamContext &ctx) {
        ctx.parallelFor(10, [&](std::uint32_t) { n.fetch_add(1); });
        ctx.serial([&] { n.fetch_add(100); });
    });
    EXPECT_EQ(n.load(), 110);
}

TEST(SelfSchedule, WorksWithEveryBarrierPolicy)
{
    for (BarrierPolicy p :
         {BarrierPolicy::None, BarrierPolicy::Variable,
          BarrierPolicy::Linear, BarrierPolicy::Exponential,
          BarrierPolicy::Blocking}) {
        BarrierConfig cfg;
        cfg.policy = p;
        cfg.blockThreshold = 64;
        std::atomic<int> n{0};
        TeamRunner team(4, cfg);
        team.run([&](TeamContext &ctx) {
            ctx.parallelFor(40, [&](std::uint32_t) {
                n.fetch_add(1, std::memory_order_relaxed);
            });
        });
        EXPECT_EQ(n.load(), 40) << "policy " << static_cast<int>(p);
    }
}

TEST(SelfSchedule, UnevenWorkStillCompletes)
{
    // WEATHER-style imbalance: iteration cost varies 100x.
    std::atomic<std::uint64_t> done{0};
    TeamRunner team(4);
    team.run([&](TeamContext &ctx) {
        ctx.parallelFor(32, [&](std::uint32_t i) {
            spinFor(i % 4 == 0 ? 20000 : 200);
            done.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(done.load(), 32u);
}

TEST(SelfSchedule, ThreadIdsAreDistinct)
{
    std::vector<std::atomic<int>> seen(6);
    TeamRunner team(6);
    team.run([&](TeamContext &ctx) {
        seen[ctx.threadId()].fetch_add(1);
        EXPECT_EQ(ctx.threads(), 6u);
    });
    for (auto &s : seen)
        EXPECT_EQ(s.load(), 1);
}

TEST(SelfSchedule, WorksWithEveryBarrierKind)
{
    for (auto kind :
         {BarrierKind::Flat, BarrierKind::TangYew, BarrierKind::Tree,
          BarrierKind::Adaptive}) {
        BarrierConfig cfg;
        cfg.policy = BarrierPolicy::Exponential;
        std::atomic<std::uint64_t> sum{0};
        TeamRunner team(4, cfg, kind);
        team.run([&](TeamContext &ctx) {
            ctx.parallelFor(100, [&](std::uint32_t i) {
                sum.fetch_add(i, std::memory_order_relaxed);
            });
            ctx.serial([&] { sum.fetch_add(1); });
        });
        EXPECT_EQ(sum.load(), 99u * 100 / 2 + 1)
            << static_cast<int>(kind);
    }
}
