/** @file Correctness tests for the spinlocks under real contention. */

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "runtime/spinlock.hpp"

using namespace absync::runtime;

namespace
{

/** Hammer @p lock from @p threads threads incrementing a counter. */
template <typename Lock>
std::uint64_t
hammer(Lock &lock, unsigned threads, std::uint64_t iters)
{
    std::uint64_t counter = 0;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < iters; ++i) {
                std::lock_guard<Lock> g(lock);
                ++counter; // data race iff the lock is broken
            }
        });
    }
    for (auto &th : pool)
        th.join();
    return counter;
}

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kIters = 20000;

} // namespace

TEST(SpinLock, TasMutualExclusion)
{
    TasLock<NoBackoff> lock;
    EXPECT_EQ(hammer(lock, kThreads, kIters), kThreads * kIters);
}

TEST(SpinLock, TasWithExpBackoff)
{
    TasLock<ExpBackoff> lock{ExpBackoff(2, 4, 256)};
    EXPECT_EQ(hammer(lock, kThreads, kIters), kThreads * kIters);
}

TEST(SpinLock, TtasMutualExclusion)
{
    TtasLock<ExpBackoff> lock;
    EXPECT_EQ(hammer(lock, kThreads, kIters), kThreads * kIters);
}

TEST(SpinLock, TtasWithLinearBackoff)
{
    TtasLock<LinearBackoff> lock{LinearBackoff(8, 512)};
    EXPECT_EQ(hammer(lock, kThreads, kIters), kThreads * kIters);
}

TEST(SpinLock, TicketMutualExclusion)
{
    TicketLock lock;
    EXPECT_EQ(hammer(lock, kThreads, kIters), kThreads * kIters);
}

TEST(SpinLock, TicketPlainSpin)
{
    TicketLock lock(0);
    EXPECT_EQ(hammer(lock, kThreads, kIters), kThreads * kIters);
}

TEST(SpinLock, TicketIsFifoFair)
{
    // Single-threaded sanity: consecutive lock/unlock pairs succeed
    // and try_lock succeeds only when free.
    TicketLock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(SpinLock, TryLockSemantics)
{
    TtasLock<> lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();

    TasLock<> tas;
    EXPECT_TRUE(tas.try_lock());
    EXPECT_FALSE(tas.try_lock());
    tas.unlock();
}

TEST(SpinLock, LocksProtectNonTrivialCriticalSection)
{
    // Longer critical sections widen the race window.
    TtasLock<ExpBackoff> lock;
    std::vector<int> v;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                std::lock_guard<TtasLock<ExpBackoff>> g(lock);
                v.push_back(i); // vector is not thread safe
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(v.size(), kThreads * 2000u);
}
