/**
 * @file
 * Deadline-aware waiting across all four barriers, the type-erased
 * interface, and BackoffResource.
 *
 * The contract under test (see barrier.hpp / tree_barrier.hpp):
 *  - a missing party makes every timed waiter return Timeout, never
 *    hang;
 *  - the structure stays usable afterwards — late or rejoining
 *    arrivals complete the phase and subsequent phases run clean;
 *  - a timed wait whose phase completes in time returns Ok.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/adaptive_barrier.hpp"
#include "runtime/barrier.hpp"
#include "runtime/barrier_interface.hpp"
#include "runtime/resource_pool.hpp"
#include "runtime/tang_yew_barrier.hpp"
#include "runtime/tree_barrier.hpp"
#include "runtime/wait_result.hpp"
#include "support/fault.hpp"

using namespace absync::runtime;
using namespace std::chrono_literals;

namespace
{

/** Deadline generous enough that only a real bug can hit it; a buggy
 *  phase then fails the test as Timeout instead of hanging CI. */
Deadline
generous()
{
    return deadlineAfter(30s);
}

/** Run @p waiters threads through fn and collect the results. */
std::vector<WaitResult>
runThreads(std::uint32_t waiters,
           const std::function<WaitResult(std::uint32_t)> &fn)
{
    std::vector<WaitResult> results(waiters, WaitResult::Ok);
    std::vector<std::thread> pool;
    for (std::uint32_t t = 0; t < waiters; ++t)
        pool.emplace_back([&, t] { results[t] = fn(t); });
    for (auto &th : pool)
        th.join();
    return results;
}

} // namespace

// ---------------------------------------------------------------------
// SpinBarrier

TEST(TimedWaits, SpinBarrierAllOkWhenEveryoneArrives)
{
    SpinBarrier bar(4);
    const auto res = runThreads(4, [&](std::uint32_t) {
        return bar.arriveAndWaitFor(generous());
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Ok);
    EXPECT_EQ(bar.totalTimeouts(), 0u);
}

TEST(TimedWaits, SpinBarrierMissingPartyTimesOutAllWaiters)
{
    SpinBarrier bar(4);
    // Only 3 of 4 parties show up.
    const auto res = runThreads(3, [&](std::uint32_t) {
        return bar.arriveAndWaitFor(deadlineAfter(50ms));
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Timeout);
    EXPECT_EQ(bar.totalTimeouts(), 3u);

    // All withdrawals landed: a full complement completes the phase
    // and the next phase runs clean.
    for (int phase = 0; phase < 2; ++phase) {
        const auto again = runThreads(4, [&](std::uint32_t) {
            return bar.arriveAndWaitFor(generous());
        });
        for (auto r : again)
            EXPECT_EQ(r, WaitResult::Ok);
    }
}

TEST(TimedWaits, SpinBarrierLateArrivalAfterTimeoutIsClean)
{
    // A waiter times out, then the "missing" party arrives late.
    // Its arrival must not release anyone by itself (the withdrawer
    // took its count back), and a full round must still work.
    SpinBarrier bar(2);
    EXPECT_EQ(bar.arriveAndWaitFor(deadlineAfter(20ms)),
              WaitResult::Timeout);
    // Late arrival: phase needs 2 again; with a short deadline this
    // thread also times out rather than completing a 1-of-2 phase.
    EXPECT_EQ(bar.arriveAndWaitFor(deadlineAfter(20ms)),
              WaitResult::Timeout);
    // Clean full phase afterwards.
    const auto res = runThreads(2, [&](std::uint32_t) {
        return bar.arriveAndWaitFor(generous());
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Ok);
}

TEST(TimedWaits, SpinBarrierTimedBlockingPolicyHonorsDeadline)
{
    // Blocking policy must not futex-sleep past the deadline in the
    // timed path (no timed atomic wait exists; the schedule clamps).
    BarrierConfig cfg;
    cfg.policy = BarrierPolicy::Blocking;
    cfg.blockThreshold = 64; // block almost immediately
    SpinBarrier bar(2, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(bar.arriveAndWaitFor(deadlineAfter(100ms)),
              WaitResult::Timeout);
    EXPECT_LT(std::chrono::steady_clock::now() - t0, 10s);
}

TEST(TimedWaits, SpinBarrierMixedTimedAndUntimedWaiters)
{
    SpinBarrier bar(3);
    const auto res = runThreads(3, [&](std::uint32_t t) {
        if (t == 0) {
            bar.arriveAndWait();
            return WaitResult::Ok;
        }
        return bar.arriveAndWaitFor(generous());
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Ok);
}

// ---------------------------------------------------------------------
// TangYewBarrier

TEST(TimedWaits, TangYewMissingPartyTimesOutThenRecovers)
{
    TangYewBarrier bar(4);
    const auto res = runThreads(3, [&](std::uint32_t) {
        return bar.arriveAndWaitFor(deadlineAfter(50ms));
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Timeout);
    EXPECT_EQ(bar.totalTimeouts(), 3u);

    for (int phase = 0; phase < 2; ++phase) {
        const auto again = runThreads(4, [&](std::uint32_t) {
            return bar.arriveAndWaitFor(generous());
        });
        for (auto r : again)
            EXPECT_EQ(r, WaitResult::Ok);
    }
}

TEST(TimedWaits, TangYewAllOkWhenEveryoneArrives)
{
    TangYewBarrier bar(3);
    for (int phase = 0; phase < 3; ++phase) {
        const auto res = runThreads(3, [&](std::uint32_t) {
            return bar.arriveAndWaitFor(generous());
        });
        for (auto r : res)
            EXPECT_EQ(r, WaitResult::Ok);
    }
    EXPECT_EQ(bar.totalTimeouts(), 0u);
}

// ---------------------------------------------------------------------
// AdaptiveBarrier

TEST(TimedWaits, AdaptiveMissingPartyTimesOutThenRecovers)
{
    AdaptiveBarrier bar(4);
    const auto res = runThreads(3, [&](std::uint32_t) {
        return bar.arriveAndWaitFor(deadlineAfter(50ms));
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Timeout);
    EXPECT_EQ(bar.totalTimeouts(), 3u);

    for (int phase = 0; phase < 2; ++phase) {
        const auto again = runThreads(4, [&](std::uint32_t) {
            return bar.arriveAndWaitFor(generous());
        });
        for (auto r : again)
            EXPECT_EQ(r, WaitResult::Ok);
    }
}

TEST(TimedWaits, AdaptiveTimeoutDoesNotPoisonEstimator)
{
    // A straggler-induced timeout must not teach the estimator to
    // expect straggler-length windows.
    AdaptiveBarrier bar(2);
    const std::uint64_t before = bar.learnedWait();
    (void)bar.arriveAndWaitFor(deadlineAfter(100ms));
    EXPECT_EQ(bar.learnedWait(), before);
}

// ---------------------------------------------------------------------
// TreeBarrier (continuation-resume semantics)

TEST(TimedWaits, TreeMissingPartyTimesOutThenResumeCompletes)
{
    TreeBarrier bar(4, 2);
    // Threads 0..2 arrive; thread 3 is missing.
    const auto res = runThreads(3, [&](std::uint32_t t) {
        return bar.arriveAndWaitFor(t, deadlineAfter(50ms));
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Timeout);
    EXPECT_EQ(bar.totalTimeouts(), 3u);

    // Everyone (including the absentee) calls again: the parked
    // continuations resume, thread 3's fresh arrival completes the
    // phase, and the barrier is clean for the next one.
    for (int phase = 0; phase < 2; ++phase) {
        const auto again = runThreads(4, [&](std::uint32_t t) {
            return bar.arriveAndWaitFor(t, generous());
        });
        for (auto r : again)
            EXPECT_EQ(r, WaitResult::Ok);
    }
}

TEST(TimedWaits, TreeResumeViaUntimedArrive)
{
    TreeBarrier bar(2, 2);
    EXPECT_EQ(bar.arriveAndWaitFor(0, deadlineAfter(30ms)),
              WaitResult::Timeout);
    // Thread 0 resumes with the untimed call while thread 1 arrives.
    const auto res = runThreads(2, [&](std::uint32_t t) {
        bar.arriveAndWait(t);
        return WaitResult::Ok;
    });
    (void)res;
    // Next phase runs clean.
    const auto again = runThreads(2, [&](std::uint32_t t) {
        return bar.arriveAndWaitFor(t, generous());
    });
    for (auto r : again)
        EXPECT_EQ(r, WaitResult::Ok);
}

TEST(TimedWaits, TreeManyThreadsManyPhases)
{
    TreeBarrier bar(8, 2);
    for (int phase = 0; phase < 20; ++phase) {
        const auto res = runThreads(8, [&](std::uint32_t t) {
            return bar.arriveAndWaitFor(t, generous());
        });
        for (auto r : res)
            EXPECT_EQ(r, WaitResult::Ok);
    }
    EXPECT_EQ(bar.totalTimeouts(), 0u);
}

// ---------------------------------------------------------------------
// Type-erased interface: the same contract through AnyBarrier.

class AnyBarrierTimed : public ::testing::TestWithParam<BarrierKind>
{
};

TEST_P(AnyBarrierTimed, MissingPartyTimesOutThenRecovers)
{
    auto bar = makeBarrier(GetParam(), 3);
    const auto res = runThreads(2, [&](std::uint32_t t) {
        return bar->arriveFor(t, deadlineAfter(50ms));
    });
    for (auto r : res)
        EXPECT_EQ(r, WaitResult::Timeout);
    EXPECT_EQ(bar->timeouts(), 2u);

    for (int phase = 0; phase < 2; ++phase) {
        const auto again = runThreads(3, [&](std::uint32_t t) {
            return bar->arriveFor(t, generous());
        });
        for (auto r : again)
            EXPECT_EQ(r, WaitResult::Ok);
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AnyBarrierTimed,
                         ::testing::Values(BarrierKind::Flat,
                                           BarrierKind::TangYew,
                                           BarrierKind::Tree,
                                           BarrierKind::Adaptive));

// ---------------------------------------------------------------------
// BackoffResource

TEST(TimedWaits, ResourceAcquireForTimesOutWhenHeld)
{
    BackoffResource res(1);
    res.acquire();
    EXPECT_EQ(res.acquireFor(deadlineAfter(50ms)),
              WaitResult::Timeout);
    EXPECT_EQ(res.totalTimeouts(), 1u);
    EXPECT_EQ(res.inUse(), 1u); // timeout acquired nothing
    res.release();
    EXPECT_EQ(res.acquireFor(deadlineAfter(50ms)), WaitResult::Ok);
    res.release();
    EXPECT_EQ(res.inUse(), 0u);
}

TEST(TimedWaits, ResourceAcquireForSucceedsWhenReleasedInTime)
{
    BackoffResource res(1);
    res.acquire();
    std::thread holder([&] {
        std::this_thread::sleep_for(30ms);
        res.release();
    });
    EXPECT_EQ(res.acquireFor(generous()), WaitResult::Ok);
    holder.join();
    res.release();
    EXPECT_EQ(res.totalTimeouts(), 0u);
}

// ---------------------------------------------------------------------
// Fault hook: perturbed barriers still complete every phase.

TEST(TimedWaits, FaultInjectedBarrierStillCompletes)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 7;
    fc.stragglerProb = 0.5;
    fc.stragglerMin = 100;
    fc.stragglerMax = 2000;
    fc.spuriousWakeProb = 0.3;
    const absync::support::FaultPlan plan(fc);
    absync::support::FaultInjector inj(plan, 4);

    BarrierConfig cfg;
    cfg.fault = &inj;
    SpinBarrier bar(4, cfg);
    for (int phase = 0; phase < 10; ++phase) {
        const auto res = runThreads(4, [&](std::uint32_t) {
            return bar.arriveAndWaitFor(generous());
        });
        for (auto r : res)
            EXPECT_EQ(r, WaitResult::Ok);
    }
    // Every arrival consulted the plan.
    EXPECT_EQ(inj.arrivals(), 40u);
}

TEST(TimedWaits, FaultInjectedTreeStillCompletes)
{
    absync::support::FaultPlanConfig fc;
    fc.seed = 11;
    fc.stragglerProb = 0.4;
    fc.stragglerMin = 50;
    fc.stragglerMax = 500;
    const absync::support::FaultPlan plan(fc);
    absync::support::FaultInjector inj(plan, 8);

    BarrierConfig cfg;
    cfg.fault = &inj;
    TreeBarrier bar(8, 2, cfg);
    for (int phase = 0; phase < 5; ++phase) {
        const auto res = runThreads(8, [&](std::uint32_t t) {
            return bar.arriveAndWaitFor(t, generous());
        });
        for (auto r : res)
            EXPECT_EQ(r, WaitResult::Ok);
    }
}
