/**
 * @file
 * OverloadGuard tests: bounded admission, shed accounting, the
 * latched overload trend verdict, the exponential retry-after hint,
 * and multithreaded conservation (admitted + sheds == probes,
 * in-flight never above capacity).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/overload_guard.hpp"

using absync::runtime::OverloadGuard;

TEST(OverloadGuard, AdmitsUpToCapacityThenSheds)
{
    OverloadGuard guard(2);
    EXPECT_TRUE(guard.tryEnter());
    EXPECT_TRUE(guard.tryEnter());
    EXPECT_EQ(guard.inFlight(), 2u);
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_EQ(guard.sheds(), 1u);
    guard.exit();
    EXPECT_TRUE(guard.tryEnter());
    guard.exit();
    guard.exit();
    EXPECT_EQ(guard.inFlight(), 0u);
    EXPECT_EQ(guard.admitted(), 3u);
}

TEST(OverloadGuard, ZeroCapacityIsClampedToOne)
{
    OverloadGuard guard(0);
    EXPECT_TRUE(guard.tryEnter());
    EXPECT_FALSE(guard.tryEnter());
    guard.exit();
}

TEST(OverloadGuard, OverloadLatchesAfterConsecutiveSheds)
{
    OverloadGuard guard(1, /*trend_probes=*/3);
    ASSERT_TRUE(guard.tryEnter());
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_FALSE(guard.overloaded()); // 2 of 3: a lone collision
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_TRUE(guard.overloaded()); // run of 3 latches
    guard.exit();
    // Sticky even after the pressure clears...
    ASSERT_TRUE(guard.tryEnter());
    guard.exit();
    EXPECT_TRUE(guard.overloaded());
    // ...until explicitly cleared.
    guard.clearOverloaded();
    EXPECT_FALSE(guard.overloaded());
    EXPECT_EQ(guard.sheds(), 3u); // counters survive the clear
}

TEST(OverloadGuard, AdmissionResetsTheShedRun)
{
    OverloadGuard guard(1, /*trend_probes=*/3);
    ASSERT_TRUE(guard.tryEnter());
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_FALSE(guard.tryEnter());
    guard.exit();
    ASSERT_TRUE(guard.tryEnter()); // breaks the run at 2
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_FALSE(guard.tryEnter());
    EXPECT_FALSE(guard.overloaded()); // never 3 in a row
    guard.exit();
}

TEST(OverloadGuard, RetryAfterHintDoublesPerConsecutiveShed)
{
    OverloadGuard guard(1, 100, /*retry_base_nanos=*/1000);
    EXPECT_EQ(guard.retryAfterHint(), 1000u);
    ASSERT_TRUE(guard.tryEnter());
    for (std::uint64_t expect : {2000u, 4000u, 8000u, 16000u}) {
        EXPECT_FALSE(guard.tryEnter());
        EXPECT_EQ(guard.retryAfterHint(), expect);
    }
    // Capped at 10 doublings.
    for (int i = 0; i < 50; ++i)
        (void)guard.tryEnter();
    EXPECT_EQ(guard.retryAfterHint(), 1000u << 10);
    guard.exit();
    ASSERT_TRUE(guard.tryEnter()); // admission resets the hint
    EXPECT_EQ(guard.retryAfterHint(), 1000u);
    guard.exit();
}

TEST(OverloadGuard, MultithreadedConservationAndBound)
{
    constexpr std::uint32_t kCapacity = 4;
    constexpr int kThreads = 8;
    constexpr int kProbesPerThread = 20000;

    OverloadGuard guard(kCapacity);
    std::atomic<std::uint32_t> peak{0};
    std::atomic<std::uint64_t> local_admits{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kProbesPerThread; ++i) {
                if (!guard.tryEnter())
                    continue;
                const std::uint32_t now = guard.inFlight();
                std::uint32_t seen =
                    peak.load(std::memory_order_relaxed);
                while (now > seen &&
                       !peak.compare_exchange_weak(seen, now)) {
                }
                local_admits.fetch_add(1,
                                       std::memory_order_relaxed);
                guard.exit();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_LE(peak.load(), kCapacity);
    EXPECT_EQ(guard.inFlight(), 0u);
    EXPECT_EQ(guard.admitted(), local_admits.load());
    EXPECT_EQ(guard.admitted() + guard.sheds(),
              static_cast<std::uint64_t>(kThreads) * kProbesPerThread);
}
