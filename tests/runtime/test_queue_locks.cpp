/**
 * @file
 * Queue-lock correctness under exhaustive schedule exploration.
 *
 * The MCS/CLH handoff protocol (queue_lock.hpp, DESIGN.md §14) is
 * proven correct the same way the barriers were: run the *real* lock
 * code under testing::VirtualSched and make the interleaving a test
 * input.  Bounded exhaustive exploration enumerates every distinct
 * 2-thread acquire/release schedule up to the branch depth and checks
 * the per-step invariants — single owner, strict FIFO handoff, no
 * lost wakeup (every run completes), no node reuse before release
 * (any premature recycle corrupts the queue and trips the owner
 * invariants).  Scripted-gate episodes pin down FIFO order and the
 * mid-queue withdrawal protocol deterministically, seeded fuzzing
 * covers 3-thread schedules, and a real-thread stress section gives
 * the TSan job a true concurrency surface (including the
 * grant-races-deadline path, which cooperative scheduling cannot
 * reach: there is no yield point between the deadline check and the
 * abandon CAS).
 *
 * Cooperative-atomicity note used by the gate flags below: between
 * two yield points (cpuRelax/spinFor) a VirtualSched worker runs
 * uninterrupted, so "set flag; lock()" publishes the flag strictly
 * before the enqueue becomes observable to any other worker — a
 * flag read therefore proves the setter has already swapped the tail
 * and parked.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "runtime/queue_lock.hpp"
#include "runtime/spin_backoff.hpp"
#include "support/fault.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;
namespace obs = absync::obs;
namespace sp = absync::support;

namespace
{

template <typename Lock>
struct LockState
{
    Lock lock;
    int inside = 0;
    std::vector<std::uint32_t> admissions;

    explicit LockState(const rt::QueueLockConfig &cfg) : lock(cfg) {}
};

/** N threads x I iterations of lock / dwell / unlock with the
 *  single-owner invariant armed at every step. */
template <typename Lock>
vt::EpisodeFactory
mutualExclusionFactory(std::uint32_t threads, std::uint32_t iters,
                       sp::FaultInjector *fault = nullptr)
{
    return [threads, iters, fault](vt::VirtualSched &sched) {
        rt::QueueLockConfig cfg;
        cfg.maxThreads = threads;
        cfg.sched = &sched;
        cfg.fault = fault;
        auto st = std::make_shared<LockState<Lock>>(cfg);
        vt::Episode ep;
        for (std::uint32_t t = 0; t < threads; ++t) {
            ep.bodies.push_back(
                [st, &sched, iters](std::uint32_t id) {
                    for (std::uint32_t i = 0; i < iters; ++i) {
                        st->lock.lock(id);
                        ++st->inside;
                        sched.require(st->inside == 1,
                                      "two holders of the queue lock");
                        st->admissions.push_back(id);
                        rt::spinFor(2); // dwell across yield points
                        sched.require(st->inside == 1,
                                      "second holder admitted mid-"
                                      "critical-section");
                        --st->inside;
                        st->lock.unlock(id);
                    }
                });
        }
        ep.stepInvariant = [st]() -> std::string {
            if (st->inside < 0 || st->inside > 1)
                return "critical-section occupancy out of range";
            return {};
        };
        return ep;
    };
}

} // namespace

TEST(QueueLockExplore, ExhaustiveTwoThreadMcsAcquireRelease)
{
    // The acceptance case: every interleaving of the 2-thread MCS
    // acquire/release protocol whose first 12 scheduling choices are
    // enumerated exhaustively, with the occupancy oracle armed.  A
    // lost wakeup or a premature node recycle shows up as a run that
    // never completes (maxSteps) or as a double admission.
    vt::ExploreConfig xc;
    xc.branchDepth = 12;
    xc.maxRuns = 100000;
    const vt::ExploreReport rep = vt::exploreSchedules(
        mutualExclusionFactory<rt::McsLock>(2, 1), xc);

    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted)
        << "bounded tree not fully enumerated within " << xc.maxRuns
        << " runs";
    EXPECT_GE(rep.interleavings, 2u);
    ::testing::Test::RecordProperty(
        "interleavings", static_cast<int>(rep.interleavings));
    std::cout << "[ explore  ] MCS 2 threads x 1 acquire, depth "
              << xc.branchDepth << ": " << rep.interleavings
              << " distinct interleavings, zero violations\n";
}

TEST(QueueLockExplore, ExhaustiveTwoThreadClhAcquireRelease)
{
    vt::ExploreConfig xc;
    xc.branchDepth = 12;
    xc.maxRuns = 100000;
    const vt::ExploreReport rep = vt::exploreSchedules(
        mutualExclusionFactory<rt::ClhLock>(2, 1), xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted);
    EXPECT_GE(rep.interleavings, 2u);
    std::cout << "[ explore  ] CLH 2 threads x 1 acquire, depth "
              << xc.branchDepth << ": " << rep.interleavings
              << " distinct interleavings, zero violations\n";
}

namespace
{

/** Two threads, one holding while the other races a deadline: every
 *  schedule must end with the lock still functional — the timed
 *  loser re-acquires untimed and succeeds. */
template <typename Lock>
vt::EpisodeFactory
timedRaceFactory()
{
    return [](vt::VirtualSched &sched) {
        rt::QueueLockConfig cfg;
        cfg.maxThreads = 2;
        cfg.sched = &sched;
        auto st = std::make_shared<LockState<Lock>>(cfg);
        vt::Episode ep;
        ep.bodies.push_back([st, &sched](std::uint32_t id) {
            st->lock.lock(id);
            ++st->inside;
            sched.require(st->inside == 1, "double admission");
            rt::spinFor(40);
            --st->inside;
            st->lock.unlock(id);
        });
        ep.bodies.push_back([st, &sched](std::uint32_t id) {
            const rt::WaitResult r =
                st->lock.lockFor(id, sched.deadlineIn(10));
            if (r == rt::WaitResult::Ok) {
                ++st->inside;
                sched.require(st->inside == 1, "double admission");
                --st->inside;
                st->lock.unlock(id);
                return;
            }
            // Withdrawn: the abandoned node must not wedge the
            // queue — an untimed re-acquire has to succeed (a lost
            // wakeup here shows up as a maxSteps failure).
            st->lock.lock(id);
            ++st->inside;
            sched.require(st->inside == 1,
                          "double admission after withdrawal");
            --st->inside;
            st->lock.unlock(id);
        });
        return ep;
    };
}

} // namespace

TEST(QueueLockExplore, ExhaustiveTimedWithdrawalMcs)
{
    vt::ExploreConfig xc;
    xc.branchDepth = 12;
    xc.maxRuns = 100000;
    const vt::ExploreReport rep =
        vt::exploreSchedules(timedRaceFactory<rt::McsLock>(), xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted);
    std::cout << "[ explore  ] MCS timed-withdrawal race: "
              << rep.interleavings << " interleavings\n";
}

TEST(QueueLockExplore, ExhaustiveTimedWithdrawalClh)
{
    vt::ExploreConfig xc;
    xc.branchDepth = 12;
    xc.maxRuns = 100000;
    const vt::ExploreReport rep =
        vt::exploreSchedules(timedRaceFactory<rt::ClhLock>(), xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted);
    std::cout << "[ explore  ] CLH timed-withdrawal race: "
              << rep.interleavings << " interleavings\n";
}

TEST(QueueLockFuzz, ThreeThreadSchedules)
{
    vt::FuzzConfig fc;
    fc.runs = 40;
    fc.seed0 = 17;
    const vt::FuzzReport mcs = vt::fuzzSchedules(
        mutualExclusionFactory<rt::McsLock>(3, 2), fc);
    EXPECT_FALSE(mcs.failed)
        << "MCS, replay with seed " << mcs.failingSeed << ": "
        << mcs.failure;
    const vt::FuzzReport clh = vt::fuzzSchedules(
        mutualExclusionFactory<rt::ClhLock>(3, 2), fc);
    EXPECT_FALSE(clh.failed)
        << "CLH, replay with seed " << clh.failingSeed << ": "
        << clh.failure;
}

namespace
{

/** Gate flags forcing the enqueue order 0 -> 1 -> 2 while thread 0
 *  holds the lock (see the cooperative-atomicity note on top). */
template <typename Lock>
struct FifoState : LockState<Lock>
{
    bool a_locked = false;
    bool b_started = false;
    bool c_started = false;

    using LockState<Lock>::LockState;
};

/** One gated run returning the admission log. */
template <typename Lock>
std::vector<std::uint32_t>
runFifoOnce(std::uint64_t seed)
{
    vt::VirtualSched sched;
    rt::QueueLockConfig cfg;
    cfg.maxThreads = 3;
    cfg.sched = &sched;
    auto st = std::make_shared<FifoState<Lock>>(cfg);
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([st](std::uint32_t id) {
        st->lock.lock(id);
        st->admissions.push_back(id);
        st->a_locked = true;
        // Hold until both waiters are provably enqueued.
        while (!st->c_started)
            rt::cpuRelax();
        st->lock.unlock(id);
    });
    bodies.push_back([st](std::uint32_t id) {
        while (!st->a_locked)
            rt::cpuRelax();
        st->b_started = true; // published before the tail swap
        st->lock.lock(id);
        st->admissions.push_back(id);
        st->lock.unlock(id);
    });
    bodies.push_back([st](std::uint32_t id) {
        while (!st->b_started) // => thread 1 already enqueued
            rt::cpuRelax();
        st->c_started = true;
        st->lock.lock(id);
        st->admissions.push_back(id);
        st->lock.unlock(id);
    });
    vt::RandomDecider decider(seed);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_TRUE(rec.completed) << rec.failure;
    return st->admissions;
}

} // namespace

TEST(QueueLockFifo, StrictHandoffOrderUnderAnySchedule)
{
    // Enqueue order is forced to 0, 1, 2 by the gates; FIFO handoff
    // means the admission order must match on every schedule.
    const std::vector<std::uint32_t> expect = {0, 1, 2};
    for (std::uint64_t seed = 200; seed < 230; ++seed) {
        EXPECT_EQ(runFifoOnce<rt::McsLock>(seed), expect)
            << "MCS seed " << seed;
        EXPECT_EQ(runFifoOnce<rt::ClhLock>(seed), expect)
            << "CLH seed " << seed;
    }
}

namespace
{

/** A (holder) - B (times out mid-queue) - C (queued behind B): B's
 *  withdrawal must never block C's handoff. */
template <typename Lock>
struct WithdrawState : LockState<Lock>
{
    bool a_locked = false;
    bool b_started = false;
    bool b_timed_out = false;
    bool c_started = false;

    using LockState<Lock>::LockState;
};

template <typename Lock>
struct WithdrawOutcome
{
    std::vector<std::uint32_t> admissions;
    std::vector<obs::CounterSnapshot> perThread;
};

template <typename Lock>
WithdrawOutcome<Lock>
runMidQueueWithdrawal(std::uint64_t seed)
{
    vt::VirtualSched sched;
    rt::QueueLockConfig cfg;
    cfg.maxThreads = 3;
    cfg.sched = &sched;
    auto st = std::make_shared<WithdrawState<Lock>>(cfg);
    auto slabs = std::make_shared<std::vector<obs::SyncCounters>>(3);

    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([st, slabs](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        st->lock.lock(id);
        st->admissions.push_back(id);
        st->a_locked = true;
        // Unlock only once C sits behind B's already-withdrawn node:
        // the handoff must walk past it.
        while (!st->c_started || !st->b_timed_out)
            rt::cpuRelax();
        st->lock.unlock(id);
    });
    bodies.push_back([st, slabs, &sched](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        while (!st->a_locked)
            rt::cpuRelax();
        st->b_started = true;
        const rt::WaitResult r =
            st->lock.lockFor(id, sched.deadlineIn(30));
        // The holder cannot release before b_timed_out is set, so
        // the deadline always wins this race.
        sched.require(r == rt::WaitResult::Timeout,
                      "mid-queue waiter acquired a held lock");
        st->b_timed_out = true;
    });
    bodies.push_back([st, slabs](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        while (!st->b_started)
            rt::cpuRelax();
        st->c_started = true;
        st->lock.lock(id);
        st->admissions.push_back(id);
        st->lock.unlock(id);
    });

    vt::RandomDecider decider(seed);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_TRUE(rec.completed) << "seed " << seed << ": "
                               << rec.failure;
    WithdrawOutcome<Lock> out;
    out.admissions = st->admissions;
    for (std::uint32_t i = 0; i < 3; ++i)
        out.perThread.push_back((*slabs)[i].snapshot());
    return out;
}

} // namespace

TEST(QueueLockWithdrawal, MidQueueTimeoutNeverBlocksSuccessors)
{
    const std::vector<std::uint32_t> expect = {0, 2};
    for (std::uint64_t seed = 300; seed < 320; ++seed) {
        const auto mcs =
            runMidQueueWithdrawal<rt::McsLock>(seed);
        EXPECT_EQ(mcs.admissions, expect) << "MCS seed " << seed;
        const auto clh =
            runMidQueueWithdrawal<rt::ClhLock>(seed);
        EXPECT_EQ(clh.admissions, expect) << "CLH seed " << seed;

        if (obs::kTelemetryEnabled) {
            // MCS: the *releaser* walks past and unlinks the
            // abandoned node, then grants C.
            EXPECT_EQ(mcs.perThread[0].nodesAbandoned, 1u);
            EXPECT_EQ(mcs.perThread[0].queueHandoffs, 1u);
            EXPECT_EQ(mcs.perThread[1].timeouts, 1u);
            EXPECT_EQ(mcs.perThread[1].withdrawals, 1u);
            // CLH: the *successor* hops backwards past the
            // abandoned node and recycles it.
            EXPECT_EQ(clh.perThread[2].nodesAbandoned, 1u);
            EXPECT_EQ(clh.perThread[2].queueHandoffs, 1u);
            EXPECT_EQ(clh.perThread[1].timeouts, 1u);
            EXPECT_EQ(clh.perThread[1].withdrawals, 1u);
            // The headline property of the family: waiters never
            // poll a shared flag, in any thread, in any role.
            for (int t = 0; t < 3; ++t) {
                EXPECT_EQ(mcs.perThread[t].flagPolls, 0u)
                    << "thread " << t;
                EXPECT_EQ(clh.perThread[t].flagPolls, 0u)
                    << "thread " << t;
            }
        }
    }
}

TEST(QueueLockFault, ParkedEnqueueWindowCannotDeadlock)
{
    // Every enqueue parks inside the MCS tail-swap/link window (the
    // classic vulnerable interval) and every arrival straggles; the
    // releaser's bounded wait for the link must still complete the
    // episode under arbitrary schedules.
    sp::FaultPlanConfig fpc;
    fpc.seed = 5;
    fpc.spuriousWakeProb = 1.0; // onWake() => park in the window
    fpc.stragglerProb = 0.5;
    fpc.stragglerMin = 10;
    fpc.stragglerMax = 50;
    const sp::FaultPlan plan(fpc);
    sp::FaultInjector inj(plan, 3);

    vt::FuzzConfig fc;
    fc.runs = 25;
    fc.seed0 = 71;
    const vt::FuzzReport rep = vt::fuzzSchedules(
        mutualExclusionFactory<rt::McsLock>(3, 2, &inj), fc);
    EXPECT_FALSE(rep.failed)
        << "replay with seed " << rep.failingSeed << ": "
        << rep.failure;
    EXPECT_EQ(rep.runsDone, fc.runs);
}

TEST(QueueLockCounters, UncontendedExactTotals)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    {
        obs::SyncCounters slab;
        obs::ScopedCounters sc(&slab);
        rt::QueueLockConfig cfg;
        cfg.maxThreads = 1;
        rt::McsLock lock(cfg);
        for (int i = 0; i < 5; ++i) {
            lock.lock(0);
            lock.unlock(0);
        }
        const obs::CounterSnapshot c = slab.snapshot();
        EXPECT_EQ(c.acquires, 5u);
        // One tail swap per lock, one tail reset-CAS per unlock.
        EXPECT_EQ(c.counterRmws, 10u);
        EXPECT_EQ(c.flagPolls, 0u);
        EXPECT_EQ(c.queueHandoffs, 0u);
        EXPECT_EQ(c.nodesAbandoned, 0u);
    }
    {
        obs::SyncCounters slab;
        obs::ScopedCounters sc(&slab);
        rt::QueueLockConfig cfg;
        cfg.maxThreads = 1;
        rt::ClhLock lock(cfg);
        for (int i = 0; i < 5; ++i) {
            lock.lock(0);
            lock.unlock(0);
        }
        const obs::CounterSnapshot c = slab.snapshot();
        EXPECT_EQ(c.acquires, 5u);
        // CLH release is a local store: one RMW per acquisition.
        EXPECT_EQ(c.counterRmws, 5u);
        EXPECT_EQ(c.flagPolls, 0u);
        EXPECT_EQ(c.queueHandoffs, 0u);
    }
}

namespace
{

/** One contended handoff with gate flags, returning summed slabs. */
template <typename Lock>
obs::CounterSnapshot
runOneHandoff(std::uint64_t seed, std::uint64_t expect_rmws)
{
    vt::VirtualSched sched;
    rt::QueueLockConfig cfg;
    cfg.maxThreads = 2;
    cfg.sched = &sched;
    auto st = std::make_shared<FifoState<Lock>>(cfg);
    auto slabs = std::make_shared<std::vector<obs::SyncCounters>>(2);

    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([st, slabs](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        st->lock.lock(id);
        st->a_locked = true;
        while (!st->b_started)
            rt::cpuRelax();
        st->lock.unlock(id);
    });
    bodies.push_back([st, slabs](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        while (!st->a_locked)
            rt::cpuRelax();
        st->b_started = true;
        st->lock.lock(id); // must go through the queued-handoff path
        st->lock.unlock(id);
    });

    vt::RandomDecider decider(seed);
    const vt::RunRecord rec = sched.run(bodies, decider);
    EXPECT_TRUE(rec.completed) << rec.failure;
    obs::CounterSnapshot total;
    for (std::uint32_t i = 0; i < 2; ++i)
        total += (*slabs)[i].snapshot();
    EXPECT_EQ(total.acquires, 2u);
    EXPECT_EQ(total.queueHandoffs, 1u);
    EXPECT_EQ(total.counterRmws, expect_rmws);
    // THE family property: zero flag polls however long the waiter
    // actually spun — local spinning generates no network traffic.
    EXPECT_EQ(total.flagPolls, 0u);
    EXPECT_EQ(total.nodesAbandoned, 0u);
    return total;
}

} // namespace

TEST(QueueLockCounters, ContendedHandoffExactTotals)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    for (std::uint64_t seed = 400; seed < 410; ++seed) {
        // MCS: two tail swaps + the *waiter's* unlock tail-reset CAS
        // (the holder's unlock grants the linked successor directly,
        // no tail access).
        runOneHandoff<rt::McsLock>(seed, 3);
        // CLH: just the two tail swaps; both releases are local
        // stores.
        runOneHandoff<rt::ClhLock>(seed, 2);
    }
}

// ---- Real-thread stress (the TSan job's surface) --------------------

TEST(QueueLockThreads, MutualExclusionStress)
{
    constexpr std::uint32_t kThreads = 4;
    constexpr std::uint64_t kIters = 2000;
    const auto stress = [](auto &lock) {
        std::uint64_t counter = 0; // protected by `lock` only
        std::vector<std::thread> workers;
        for (std::uint32_t t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                for (std::uint64_t i = 0; i < kIters; ++i) {
                    lock.lock(t);
                    ++counter;
                    lock.unlock(t);
                }
            });
        }
        for (auto &w : workers)
            w.join();
        return counter;
    };

    rt::QueueLockConfig cfg;
    cfg.maxThreads = kThreads;
    rt::McsLock mcs(cfg);
    EXPECT_EQ(stress(mcs), kThreads * kIters);
    rt::ClhLock clh(cfg);
    EXPECT_EQ(stress(clh), kThreads * kIters);
}

TEST(QueueLockThreads, TimedStressNeverLosesTheLock)
{
    // Real threads racing tiny deadlines: this is the only way to
    // reach the grant-races-deadline branch (under VirtualSched the
    // deadline check and the abandon CAS are a single step).  Success
    // or Timeout, the lock must stay consistent: protected increments
    // equal successful acquisitions, and a final untimed sweep takes
    // the lock on every thread.
    constexpr std::uint32_t kThreads = 4;
    constexpr std::uint64_t kIters = 400;
    const auto stress = [](auto &lock) {
        std::atomic<std::uint64_t> acquired{0};
        std::uint64_t counter = 0; // protected by `lock` only
        std::vector<std::thread> workers;
        for (std::uint32_t t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                for (std::uint64_t i = 0; i < kIters; ++i) {
                    const auto deadline = rt::deadlineAfter(
                        std::chrono::microseconds(i % 3));
                    if (lock.lockFor(t, deadline) ==
                        rt::WaitResult::Ok) {
                        ++counter;
                        acquired.fetch_add(
                            1, std::memory_order_relaxed);
                        lock.unlock(t);
                    }
                }
            });
        }
        for (auto &w : workers)
            w.join();
        EXPECT_EQ(counter, acquired.load());
        // No wedged queue: every thread can still acquire untimed.
        for (std::uint32_t t = 0; t < kThreads; ++t) {
            lock.lock(t);
            lock.unlock(t);
        }
    };

    rt::QueueLockConfig cfg;
    cfg.maxThreads = kThreads;
    rt::McsLock mcs(cfg);
    stress(mcs);
    rt::ClhLock clh(cfg);
    stress(clh);
}
