/** @file Correctness and stress tests for the combining-tree
 *        barrier on real threads. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/tree_barrier.hpp"

using namespace absync::runtime;

namespace
{

/** The fundamental barrier property across phases, as in the flat
 *  barrier tests, but with explicit thread ids. */
void
phaseTest(BarrierConfig cfg, std::uint32_t fan_in, unsigned threads,
          unsigned phases)
{
    TreeBarrier barrier(threads, fan_in, cfg);
    std::vector<std::atomic<unsigned>> counts(phases);
    std::atomic<unsigned> failures{0};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned ph = 0; ph < phases; ++ph) {
                counts[ph].fetch_add(1, std::memory_order_relaxed);
                barrier.arriveAndWait(t);
                if (counts[ph].load(std::memory_order_relaxed) !=
                    threads) {
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
                }
                barrier.arriveAndWait(t);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

BarrierConfig
cfgFor(BarrierPolicy p)
{
    BarrierConfig cfg;
    cfg.policy = p;
    cfg.blockThreshold = 256;
    return cfg;
}

} // namespace

TEST(TreeBarrier, NodeCounts)
{
    TreeBarrier b8(8, 2);
    EXPECT_EQ(b8.nodeCount(), 7u); // 4 + 2 + 1
    TreeBarrier b9(9, 2);
    EXPECT_EQ(b9.nodeCount(), 11u); // 5 + 3 + 2 + 1
    TreeBarrier b16(16, 4);
    EXPECT_EQ(b16.nodeCount(), 5u); // 4 + 1
    TreeBarrier b1(1, 2);
    EXPECT_EQ(b1.nodeCount(), 1u);
}

TEST(TreeBarrier, SingleThread)
{
    TreeBarrier b(1, 2);
    for (int i = 0; i < 100; ++i)
        b.arriveAndWait(0);
    EXPECT_EQ(b.totalPolls(), 0u);
}

TEST(TreeBarrier, TwoThreadsManyPhases)
{
    phaseTest(cfgFor(BarrierPolicy::Exponential), 2, 2, 200);
}

TEST(TreeBarrier, EveryPolicy)
{
    for (BarrierPolicy p :
         {BarrierPolicy::None, BarrierPolicy::Variable,
          BarrierPolicy::Linear, BarrierPolicy::Exponential,
          BarrierPolicy::Blocking}) {
        phaseTest(cfgFor(p), 2, 4, 25);
    }
}

TEST(TreeBarrier, WideFanIn)
{
    phaseTest(cfgFor(BarrierPolicy::Exponential), 8, 6, 50);
}

TEST(TreeBarrier, NonPowerThreadCounts)
{
    for (unsigned threads : {3u, 5u, 7u, 9u})
        phaseTest(cfgFor(BarrierPolicy::Exponential), 2, threads, 25);
}

TEST(TreeBarrier, DeepTree)
{
    // 9 threads, fan-in 2: four levels of nodes.
    phaseTest(cfgFor(BarrierPolicy::Linear), 2, 9, 40);
}

TEST(TreeBarrier, BlockingBlocks)
{
    BarrierConfig cfg = cfgFor(BarrierPolicy::Blocking);
    cfg.blockThreshold = 16;
    TreeBarrier b(2, 2, cfg);
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        b.arriveAndWait(1);
    });
    b.arriveAndWait(0);
    late.join();
    EXPECT_GE(b.totalBlocks(), 1u);
}

TEST(TreeBarrier, PollsCounted)
{
    TreeBarrier b(2, 2, cfgFor(BarrierPolicy::None));
    std::thread other([&] {
        for (int i = 0; i < 20; ++i)
            b.arriveAndWait(1);
    });
    for (int i = 0; i < 20; ++i)
        b.arriveAndWait(0);
    other.join();
    EXPECT_GT(b.totalPolls(), 0u);
}
