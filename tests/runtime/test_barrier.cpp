/** @file Correctness and stress tests for the adaptive spin barrier. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/barrier.hpp"

using namespace absync::runtime;

namespace
{

/**
 * Run @p phases barrier phases on @p threads threads; each thread
 * bumps a per-phase counter before the barrier, and after the barrier
 * verifies all bumps of the phase are visible — the fundamental
 * barrier property.
 */
void
phaseTest(BarrierConfig cfg, unsigned threads, unsigned phases)
{
    SpinBarrier barrier(threads, cfg);
    std::vector<std::atomic<unsigned>> counts(phases);
    std::atomic<unsigned> failures{0};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (unsigned ph = 0; ph < phases; ++ph) {
                counts[ph].fetch_add(1, std::memory_order_relaxed);
                barrier.arriveAndWait();
                if (counts[ph].load(std::memory_order_relaxed) !=
                    threads) {
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
                }
                barrier.arriveAndWait(); // keep phases separated
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

BarrierConfig
cfgFor(BarrierPolicy p)
{
    BarrierConfig cfg;
    cfg.policy = p;
    return cfg;
}

} // namespace

TEST(Barrier, NonePolicy)
{
    phaseTest(cfgFor(BarrierPolicy::None), 4, 50);
}

TEST(Barrier, VariablePolicy)
{
    phaseTest(cfgFor(BarrierPolicy::Variable), 4, 50);
}

TEST(Barrier, LinearPolicy)
{
    phaseTest(cfgFor(BarrierPolicy::Linear), 4, 50);
}

TEST(Barrier, ExponentialPolicy)
{
    phaseTest(cfgFor(BarrierPolicy::Exponential), 4, 50);
}

TEST(Barrier, BlockingPolicy)
{
    BarrierConfig cfg = cfgFor(BarrierPolicy::Blocking);
    cfg.blockThreshold = 64; // block quickly
    phaseTest(cfg, 4, 20);
}

TEST(Barrier, ManyThreads)
{
    phaseTest(cfgFor(BarrierPolicy::Exponential), 16, 10);
}

TEST(Barrier, SingleThreadNeverWaits)
{
    SpinBarrier b(1);
    for (int i = 0; i < 100; ++i)
        b.arriveAndWait();
    EXPECT_EQ(b.totalPolls(), 0u);
}

TEST(Barrier, PollCountingWorks)
{
    SpinBarrier b(2, cfgFor(BarrierPolicy::None));
    std::thread other([&] {
        for (int i = 0; i < 10; ++i)
            b.arriveAndWait();
    });
    for (int i = 0; i < 10; ++i)
        b.arriveAndWait();
    other.join();
    EXPECT_GT(b.totalPolls(), 0u);
}

TEST(Barrier, BlockingActuallyBlocks)
{
    BarrierConfig cfg = cfgFor(BarrierPolicy::Blocking);
    cfg.blockThreshold = 16;
    cfg.initial = 8;
    SpinBarrier b(2, cfg);
    std::thread late([&] {
        // Arrive clearly after the other side started waiting.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        b.arriveAndWait();
    });
    b.arriveAndWait(); // should cross the threshold and futex-wait
    late.join();
    EXPECT_GE(b.totalBlocks(), 1u);
}

TEST(Barrier, ExponentialPollsFewerThanNone)
{
    // The runtime analogue of the paper's headline claim: with a
    // straggler, exponential backoff takes far fewer shared polls.
    const auto measure = [](BarrierPolicy policy) {
        BarrierConfig cfg = cfgFor(policy);
        SpinBarrier b(2, cfg);
        std::thread late([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            b.arriveAndWait();
        });
        b.arriveAndWait();
        late.join();
        return b.totalPolls();
    };
    const auto polls_none = measure(BarrierPolicy::None);
    const auto polls_exp = measure(BarrierPolicy::Exponential);
    EXPECT_LT(polls_exp * 10, polls_none)
        << "exponential should poll at least 10x less while a "
           "straggler is 20 ms late";
}

TEST(Barrier, ReusableAcrossManyPhases)
{
    phaseTest(cfgFor(BarrierPolicy::Exponential), 3, 500);
}
