/** @file Unit tests for spin-backoff primitives. */

#include <gtest/gtest.h>

#include "runtime/spin_backoff.hpp"

using namespace absync::runtime;

TEST(SpinBackoff, ExpGrowsByBase)
{
    ExpBackoff b(2, 4, 1024);
    EXPECT_EQ(b.current(), 4u);
    b();
    EXPECT_EQ(b.current(), 8u);
    b();
    EXPECT_EQ(b.current(), 16u);
}

TEST(SpinBackoff, ExpClampsAtMax)
{
    ExpBackoff b(8, 8, 100);
    for (int i = 0; i < 10; ++i)
        b();
    EXPECT_EQ(b.current(), 100u);
}

TEST(SpinBackoff, ExpNormalizesDegenerateParameters)
{
    // Regression: base 0 used to divide by zero in the growth test
    // (max_/base_), base 1 never grew, initial 0 busy-polled forever,
    // and initial > max overshot the clamp on the first wait.  The
    // constructor now normalizes all four.
    ExpBackoff zero_base(0, 4, 64);
    zero_base(); // must not crash
    EXPECT_GE(zero_base.current(), 8u); // grew (base clamped to 2)

    ExpBackoff one_base(1, 4, 64);
    one_base();
    EXPECT_EQ(one_base.current(), 8u);

    ExpBackoff zero_initial(2, 0, 64);
    EXPECT_GE(zero_initial.current(), 1u); // never a zero-length wait

    ExpBackoff oversized_initial(2, 1 << 20, 64);
    EXPECT_EQ(oversized_initial.current(), 64u);
    oversized_initial();
    EXPECT_EQ(oversized_initial.current(), 64u); // saturated, no wrap
}

TEST(SpinBackoff, ExpSaturatesWithoutOverflow)
{
    // Near the top of the range the next doubling would overflow;
    // the guard must route to max_ instead of wrapping.
    const std::uint64_t huge = ~0ull - 1;
    ExpBackoff b(2, huge / 2 + 1, huge);
    b.advance();
    EXPECT_EQ(b.current(), huge);
    b.advance();
    EXPECT_EQ(b.current(), huge); // stays clamped
}

TEST(SpinBackoff, ExpResetRestoresInitial)
{
    ExpBackoff b(2, 4, 1024);
    b();
    b();
    b.reset();
    EXPECT_EQ(b.current(), 4u);
}

TEST(SpinBackoff, NoBackoffIsCallable)
{
    NoBackoff b;
    for (int i = 0; i < 100; ++i)
        b(); // must not hang or crash
    b.reset();
}

TEST(SpinBackoff, LinearIsCallable)
{
    LinearBackoff b(4, 64);
    for (int i = 0; i < 100; ++i)
        b(); // saturates at max and keeps working
    b.reset();
}

TEST(SpinBackoff, ProportionalScales)
{
    ProportionalBackoff b(2);
    b.wait(0); // must return immediately
    b.wait(10);
    SUCCEED();
}

TEST(SpinBackoff, SpinForZeroReturns)
{
    spinFor(0);
    spinFor(10);
    SUCCEED();
}
