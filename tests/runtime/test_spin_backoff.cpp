/** @file Unit tests for spin-backoff primitives. */

#include <gtest/gtest.h>

#include "runtime/spin_backoff.hpp"

using namespace absync::runtime;

TEST(SpinBackoff, ExpGrowsByBase)
{
    ExpBackoff b(2, 4, 1024);
    EXPECT_EQ(b.current(), 4u);
    b();
    EXPECT_EQ(b.current(), 8u);
    b();
    EXPECT_EQ(b.current(), 16u);
}

TEST(SpinBackoff, ExpClampsAtMax)
{
    ExpBackoff b(8, 8, 100);
    for (int i = 0; i < 10; ++i)
        b();
    EXPECT_EQ(b.current(), 100u);
}

TEST(SpinBackoff, ExpResetRestoresInitial)
{
    ExpBackoff b(2, 4, 1024);
    b();
    b();
    b.reset();
    EXPECT_EQ(b.current(), 4u);
}

TEST(SpinBackoff, NoBackoffIsCallable)
{
    NoBackoff b;
    for (int i = 0; i < 100; ++i)
        b(); // must not hang or crash
    b.reset();
}

TEST(SpinBackoff, LinearIsCallable)
{
    LinearBackoff b(4, 64);
    for (int i = 0; i < 100; ++i)
        b(); // saturates at max and keeps working
    b.reset();
}

TEST(SpinBackoff, ProportionalScales)
{
    ProportionalBackoff b(2);
    b.wait(0); // must return immediately
    b.wait(10);
    SUCCEED();
}

TEST(SpinBackoff, SpinForZeroReturns)
{
    spinFor(0);
    spinFor(10);
    SUCCEED();
}
