/** @file Correctness, schedule-exploration, and stress tests for the
 *        two-level hierarchical barrier: real-thread phase batteries
 *        over both wake-down families, bounded-exhaustive
 *        interleaving enumeration of the 2-tiles-x-2-threads shape,
 *        timed-withdrawal fuzz, and the fail-fast tile-shape paths. */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/barrier_interface.hpp"
#include "runtime/hierarchical_barrier.hpp"
#include "runtime/spin_backoff.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

using namespace absync::runtime;
namespace vt = absync::testing;

using namespace std::chrono_literals;

namespace
{

/** The fundamental barrier property across phases, with explicit
 *  thread ids (cf. the tree-barrier battery). */
void
phaseTest(BarrierConfig cfg, unsigned threads, unsigned phases)
{
    HierarchicalBarrier barrier(threads, cfg);
    std::vector<std::atomic<unsigned>> counts(phases);
    std::atomic<unsigned> failures{0};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned ph = 0; ph < phases; ++ph) {
                counts[ph].fetch_add(1, std::memory_order_relaxed);
                barrier.arriveAndWait(t);
                if (counts[ph].load(std::memory_order_relaxed) !=
                    threads) {
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
                }
                barrier.arriveAndWait(t);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

BarrierConfig
cfgFor(BarrierPolicy p, std::uint32_t tile_size = 0,
       bool queue = false)
{
    BarrierConfig cfg;
    cfg.policy = p;
    cfg.blockThreshold = 256;
    cfg.tileSize = tile_size;
    cfg.queueWakeup = queue;
    return cfg;
}

} // namespace

TEST(HierarchicalBarrier, AutoTileShape)
{
    // Auto: largest divisor no larger than sqrt(parties).
    EXPECT_EQ(HierarchicalBarrier(12).tileSize(), 3u);
    EXPECT_EQ(HierarchicalBarrier(12).tiles(), 4u);
    EXPECT_EQ(HierarchicalBarrier(16).tileSize(), 4u);
    EXPECT_EQ(HierarchicalBarrier(16).tiles(), 4u);
    EXPECT_EQ(HierarchicalBarrier(7).tileSize(), 1u); // prime: flat
    EXPECT_EQ(HierarchicalBarrier(7).tiles(), 7u);
    EXPECT_EQ(HierarchicalBarrier(1).tileSize(), 1u);
}

TEST(HierarchicalBarrier, SingleThread)
{
    for (const bool queue : {false, true}) {
        HierarchicalBarrier b(
            1, cfgFor(BarrierPolicy::Exponential, 0, queue));
        for (int i = 0; i < 100; ++i)
            b.arriveAndWait(0);
        EXPECT_EQ(b.totalPolls(), 0u);
        EXPECT_EQ(b.totalTimeouts(), 0u);
    }
}

TEST(HierarchicalBarrier, EveryPolicySpinFamily)
{
    for (BarrierPolicy p :
         {BarrierPolicy::None, BarrierPolicy::Variable,
          BarrierPolicy::Linear, BarrierPolicy::Exponential,
          BarrierPolicy::Blocking}) {
        phaseTest(cfgFor(p, 2), 8, 25);
    }
}

TEST(HierarchicalBarrier, EveryPolicyQueueFamily)
{
    for (BarrierPolicy p :
         {BarrierPolicy::None, BarrierPolicy::Exponential,
          BarrierPolicy::Blocking}) {
        phaseTest(cfgFor(p, 2, true), 8, 25);
    }
}

TEST(HierarchicalBarrier, UnevenTileShapes)
{
    // Non-square partitions on both sides of sqrt(N).
    phaseTest(cfgFor(BarrierPolicy::Exponential, 3), 12, 20);
    phaseTest(cfgFor(BarrierPolicy::Exponential, 6), 12, 20);
    phaseTest(cfgFor(BarrierPolicy::Exponential, 1), 5, 20);
    phaseTest(cfgFor(BarrierPolicy::Exponential, 5), 5, 20);
}

TEST(HierarchicalBarrier, QueueHandoffAccounting)
{
    // Every phase delivers exactly N-1 handoff writes in total:
    // tiles-1 along the cross-tile queue plus tiles*(tileSize-1)
    // along the tile queues.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPhases = 40;
    HierarchicalBarrier b(kThreads,
                          cfgFor(BarrierPolicy::None, 4, true));
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned ph = 0; ph < kPhases; ++ph)
                b.arriveAndWait(t);
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(b.totalHandoffs(),
              std::uint64_t{kPhases} * (kThreads - 1));
}

TEST(HierarchicalBarrier, SpinFamilyNeverHandsOff)
{
    HierarchicalBarrier b(4, cfgFor(BarrierPolicy::None, 2));
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < 4; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned ph = 0; ph < 10; ++ph)
                b.arriveAndWait(t);
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(b.totalHandoffs(), 0u);
    EXPECT_GT(b.totalPolls(), 0u);
}

TEST(HierarchicalBarrier, BlockingBlocks)
{
    BarrierConfig cfg = cfgFor(BarrierPolicy::Blocking, 2);
    cfg.blockThreshold = 16;
    HierarchicalBarrier b(2, cfg);
    std::thread late([&] {
        std::this_thread::sleep_for(50ms);
        b.arriveAndWait(1);
    });
    b.arriveAndWait(0);
    late.join();
    EXPECT_GE(b.totalBlocks(), 1u);
}

TEST(HierarchicalBarrier, TimedWaitParksAndResumes)
{
    // Continuation-resume (cf. TreeBarrier): a timed-out arrival
    // stands; the same thread's next call resumes the parked wait.
    for (const bool queue : {false, true}) {
        HierarchicalBarrier b(
            2, cfgFor(BarrierPolicy::Variable, 2, queue));
        EXPECT_EQ(b.arriveAndWaitFor(0, deadlineAfter(20ms)),
                  WaitResult::Timeout)
            << (queue ? "queue" : "spin");
        std::thread other([&] { b.arriveAndWait(1); });
        WaitResult r = WaitResult::Timeout;
        for (int tries = 0;
             tries < 500 && r == WaitResult::Timeout; ++tries)
            r = b.arriveAndWaitFor(0, deadlineAfter(20ms));
        EXPECT_EQ(r, WaitResult::Ok)
            << (queue ? "queue" : "spin");
        other.join();
        EXPECT_GE(b.totalTimeouts(), 1u);
    }
}

TEST(HierarchicalBarrier, TimedRepresentativeHoldsItsTile)
{
    // 2 tiles x 1 thread: both threads are representatives.  The
    // second phase must still work after the first one was reached
    // through a parked-and-resumed representative wait.
    HierarchicalBarrier b(2, cfgFor(BarrierPolicy::Variable, 1));
    std::thread late([&] {
        std::this_thread::sleep_for(40ms);
        b.arriveAndWait(1);
        b.arriveAndWait(1);
    });
    WaitResult r = WaitResult::Timeout;
    for (int tries = 0; tries < 500 && r == WaitResult::Timeout;
         ++tries)
        r = b.arriveAndWaitFor(0, deadlineAfter(10ms));
    EXPECT_EQ(r, WaitResult::Ok);
    b.arriveAndWait(0);
    late.join();
    EXPECT_GE(b.totalTimeouts(), 1u);
}

// ---- Bounded-exhaustive schedule exploration ------------------------
//
// The acceptance shape from the issue: 2 tiles x 2 threads per tile,
// every interleaving of the first scheduling choices enumerated
// exhaustively with the phase-ordering oracle armed, for both
// wake-down families.  A lost wake (the queue family's failure mode)
// or a premature release (the spin family's) would either trip the
// oracle or deadlock the bounded run — both are reported failures.

namespace
{

vt::BarrierEpisodeConfig
hierEpisode(bool queue, BarrierPolicy policy)
{
    vt::BarrierEpisodeConfig cfg;
    cfg.kind = BarrierKind::Hierarchical;
    cfg.parties = 4;
    cfg.phases = 2;
    cfg.barrier.policy = policy;
    cfg.barrier.tileSize = 2;
    cfg.barrier.queueWakeup = queue;
    return cfg;
}

} // namespace

TEST(HierarchicalSchedules, ExhaustiveTwoTilesTwoThreadsSpin)
{
    vt::ExploreConfig xc;
    xc.branchDepth = 6;
    xc.maxRuns = 200000;
    const vt::ExploreReport rep = vt::exploreSchedules(
        vt::barrierPhasesFactory(
            hierEpisode(false, BarrierPolicy::None)),
        xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted)
        << "bounded tree not fully enumerated within " << xc.maxRuns
        << " runs";
    EXPECT_GE(rep.interleavings, 2u);
}

TEST(HierarchicalSchedules, ExhaustiveTwoTilesTwoThreadsQueue)
{
    vt::ExploreConfig xc;
    xc.branchDepth = 6;
    xc.maxRuns = 200000;
    const vt::ExploreReport rep = vt::exploreSchedules(
        vt::barrierPhasesFactory(
            hierEpisode(true, BarrierPolicy::None)),
        xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted);
    EXPECT_GE(rep.interleavings, 2u);
}

TEST(HierarchicalSchedules, FuzzEveryPolicyBothFamilies)
{
    for (const bool queue : {false, true}) {
        for (const BarrierPolicy policy :
             {BarrierPolicy::None, BarrierPolicy::Variable,
              BarrierPolicy::Exponential,
              BarrierPolicy::Blocking}) {
            vt::BarrierEpisodeConfig cfg =
                hierEpisode(queue, policy);
            cfg.barrier.blockThreshold = 16;
            vt::FuzzConfig fc;
            fc.runs = 15;
            fc.seed0 = 53;
            const vt::FuzzReport rep =
                vt::fuzzSchedules(vt::barrierPhasesFactory(cfg), fc);
            EXPECT_FALSE(rep.failed)
                << (queue ? "queue" : "spin") << " policy "
                << static_cast<int>(policy)
                << ", replay with seed " << rep.failingSeed << ": "
                << rep.failure;
        }
    }
}

TEST(HierarchicalSchedules, FuzzTimedResumeNeverDoubleCounts)
{
    // Timed-withdrawal variant of the exploration battery: one
    // thread per tile runs timed arrivals that park and resume,
    // a straggler delays every phase past several deadlines.  Under
    // arbitrary schedules a resumed arrival must count exactly once
    // per phase — the PhaseLog trips on any double count, lost
    // arrival, or premature release.
    for (const bool queue : {false, true}) {
        const vt::EpisodeFactory factory =
            [queue](vt::VirtualSched &sched) {
                struct State
                {
                    std::unique_ptr<AnyBarrier> barrier;
                    vt::PhaseLog log{4};
                };
                auto st = std::make_shared<State>();
                BarrierConfig cfg;
                cfg.policy = BarrierPolicy::Variable;
                cfg.tileSize = 2;
                cfg.queueWakeup = queue;
                cfg.sched = &sched;
                st->barrier =
                    makeBarrier(BarrierKind::Hierarchical, 4, cfg);

                vt::Episode ep;
                for (std::uint32_t t = 0; t < 3; ++t) {
                    ep.bodies.push_back(
                        [st, &sched](std::uint32_t id) {
                            for (std::uint32_t p = 1; p <= 2; ++p) {
                                std::uint32_t attempts = 0;
                                while (st->barrier->arriveFor(
                                           id,
                                           sched.deadlineIn(200)) ==
                                       WaitResult::Timeout) {
                                    if (++attempts > 10000)
                                        sched.fail("timed arrive "
                                                   "never resumed");
                                }
                                const std::string err =
                                    st->log.record(id, p);
                                if (!err.empty())
                                    sched.fail(err);
                            }
                        });
                }
                ep.bodies.push_back([st,
                                     &sched](std::uint32_t id) {
                    for (std::uint32_t p = 1; p <= 2; ++p) {
                        spinFor(700); // straggle past deadlines
                        st->barrier->arrive(id);
                        const std::string err =
                            st->log.record(id, p);
                        if (!err.empty())
                            sched.fail(err);
                    }
                });
                return ep;
            };

        vt::FuzzConfig fc;
        fc.runs = 40;
        fc.seed0 = 410;
        const vt::FuzzReport rep = vt::fuzzSchedules(factory, fc);
        EXPECT_FALSE(rep.failed)
            << (queue ? "queue" : "spin") << ", replay with seed "
            << rep.failingSeed << ": " << rep.failure;
    }
}

// ---- Fail-fast tile-shape paths -------------------------------------

namespace
{

void
badTileShape()
{
    BarrierConfig cfg;
    cfg.tileSize = 4; // does not divide 10
    HierarchicalBarrier b(10, cfg);
    b.arriveAndWait(0);
}

void
oversizedTile()
{
    BarrierConfig cfg;
    cfg.tileSize = 8; // larger than the party count
    HierarchicalBarrier b(4, cfg);
    b.arriveAndWait(0);
}

} // namespace

TEST(HierarchicalBarrierDeathTest, TileSizeMustDivideParties)
{
    EXPECT_EXIT(badTileShape(), ::testing::ExitedWithCode(2),
                "tile size 4 invalid for 10 parties");
}

TEST(HierarchicalBarrierDeathTest, TileSizeMustFitParties)
{
    EXPECT_EXIT(oversizedTile(), ::testing::ExitedWithCode(2),
                "tile size 8 invalid for 4 parties");
}
