/** @file Tests for the type-erased barrier factory and adapters. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/barrier_interface.hpp"

using namespace absync::runtime;

namespace
{

void
phases(AnyBarrier &b, unsigned threads, unsigned n_phases)
{
    std::vector<std::atomic<unsigned>> counts(n_phases);
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned ph = 0; ph < n_phases; ++ph) {
                counts[ph].fetch_add(1, std::memory_order_relaxed);
                b.arrive(t);
                if (counts[ph].load(std::memory_order_relaxed) !=
                    threads) {
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
                }
                b.arrive(t);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

} // namespace

TEST(BarrierInterface, EveryKindIsABarrier)
{
    for (auto kind :
         {BarrierKind::Flat, BarrierKind::TangYew, BarrierKind::Tree,
          BarrierKind::Adaptive, BarrierKind::Hierarchical}) {
        BarrierConfig cfg;
        cfg.policy = BarrierPolicy::Exponential;
        auto b = makeBarrier(kind, 4, cfg);
        ASSERT_NE(b, nullptr);
        phases(*b, 4, 20);
        EXPECT_GE(b->polls(), 0u);
    }
}

TEST(BarrierInterface, KindParsing)
{
    EXPECT_EQ(barrierKindFromString("flat"), BarrierKind::Flat);
    EXPECT_EQ(barrierKindFromString("tangyew"),
              BarrierKind::TangYew);
    EXPECT_EQ(barrierKindFromString("tree"), BarrierKind::Tree);
    EXPECT_EQ(barrierKindFromString("adaptive"),
              BarrierKind::Adaptive);
    EXPECT_EQ(barrierKindFromString("hier"),
              BarrierKind::Hierarchical);
    EXPECT_EQ(barrierKindFromString("hierarchical"),
              BarrierKind::Hierarchical);
}

TEST(BarrierInterface, SingleThreadEveryKind)
{
    for (auto kind :
         {BarrierKind::Flat, BarrierKind::TangYew, BarrierKind::Tree,
          BarrierKind::Adaptive, BarrierKind::Hierarchical}) {
        auto b = makeBarrier(kind, 1);
        for (int i = 0; i < 50; ++i)
            b->arrive(0);
    }
    SUCCEED();
}
