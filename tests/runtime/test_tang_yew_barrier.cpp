/** @file Correctness tests for the Tang & Yew two-variable barrier. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/tang_yew_barrier.hpp"

using namespace absync::runtime;

namespace
{

void
phaseTest(BarrierConfig cfg, unsigned threads, unsigned phases)
{
    TangYewBarrier barrier(threads, cfg);
    std::vector<std::atomic<unsigned>> counts(phases);
    std::atomic<unsigned> failures{0};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (unsigned ph = 0; ph < phases; ++ph) {
                counts[ph].fetch_add(1, std::memory_order_relaxed);
                barrier.arriveAndWait();
                if (counts[ph].load(std::memory_order_relaxed) !=
                    threads) {
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

BarrierConfig
cfgFor(BarrierPolicy p)
{
    BarrierConfig cfg;
    cfg.policy = p;
    cfg.blockThreshold = 128;
    return cfg;
}

} // namespace

TEST(TangYewBarrier, SingleThread)
{
    TangYewBarrier b(1);
    for (int i = 0; i < 200; ++i)
        b.arriveAndWait();
    EXPECT_EQ(b.totalPolls(), 0u);
}

TEST(TangYewBarrier, EveryPolicyManyPhases)
{
    for (BarrierPolicy p :
         {BarrierPolicy::None, BarrierPolicy::Variable,
          BarrierPolicy::Linear, BarrierPolicy::Exponential,
          BarrierPolicy::Blocking}) {
        phaseTest(cfgFor(p), 4, 30);
    }
}

TEST(TangYewBarrier, ManyThreads)
{
    phaseTest(cfgFor(BarrierPolicy::Exponential), 12, 15);
}

TEST(TangYewBarrier, LongPhaseSequence)
{
    // Cell pairs alternate every phase: run enough phases to cycle
    // them hundreds of times.
    phaseTest(cfgFor(BarrierPolicy::Exponential), 3, 400);
}

TEST(TangYewBarrier, BlockingBlocks)
{
    BarrierConfig cfg = cfgFor(BarrierPolicy::Blocking);
    cfg.blockThreshold = 16;
    TangYewBarrier b(2, cfg);
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        b.arriveAndWait();
    });
    b.arriveAndWait();
    late.join();
    EXPECT_GE(b.totalBlocks(), 1u);
}

TEST(TangYewBarrier, PollsCounted)
{
    TangYewBarrier b(2, cfgFor(BarrierPolicy::None));
    std::thread other([&] {
        for (int i = 0; i < 20; ++i)
            b.arriveAndWait();
    });
    for (int i = 0; i < 20; ++i)
        b.arriveAndWait();
    other.join();
    EXPECT_GT(b.totalPolls(), 0u);
}

TEST(TangYewBarrier, TwoIndependentBarriers)
{
    // Regression guard: phase state is per-object.
    TangYewBarrier a(2), b(2);
    std::thread other([&] {
        for (int i = 0; i < 50; ++i) {
            a.arriveAndWait();
            b.arriveAndWait();
        }
    });
    for (int i = 0; i < 50; ++i) {
        a.arriveAndWait();
        b.arriveAndWait();
    }
    other.join();
    SUCCEED();
}
