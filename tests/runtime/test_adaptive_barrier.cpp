/** @file Correctness and adaptation tests for the self-tuning
 *        barrier. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/adaptive_barrier.hpp"
#include "runtime/barrier.hpp"

using namespace absync::runtime;

namespace
{

void
phaseTest(unsigned threads, unsigned phases,
          AdaptiveBarrierConfig cfg = {})
{
    AdaptiveBarrier barrier(threads, cfg);
    std::vector<std::atomic<unsigned>> counts(phases);
    std::atomic<unsigned> failures{0};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (unsigned ph = 0; ph < phases; ++ph) {
                counts[ph].fetch_add(1, std::memory_order_relaxed);
                barrier.arriveAndWait();
                if (counts[ph].load(std::memory_order_relaxed) !=
                    threads) {
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

} // namespace

TEST(AdaptiveBarrier, CorrectAcrossPhases)
{
    phaseTest(4, 60);
}

TEST(AdaptiveBarrier, SingleThread)
{
    AdaptiveBarrier b(1);
    for (int i = 0; i < 100; ++i)
        b.arriveAndWait();
    EXPECT_EQ(b.totalPolls(), 0u);
}

TEST(AdaptiveBarrier, ManyThreads)
{
    phaseTest(10, 20);
}

TEST(AdaptiveBarrier, LearnsLongWindows)
{
    // With a persistent straggler, the learned first wait must grow
    // well past the initial guess.
    AdaptiveBarrierConfig cfg;
    cfg.initialGuess = 8;
    AdaptiveBarrier b(2, cfg);
    const auto initial = b.learnedWait();
    std::thread straggler([&] {
        for (int i = 0; i < 15; ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(3));
            b.arriveAndWait();
        }
    });
    for (int i = 0; i < 15; ++i)
        b.arriveAndWait();
    straggler.join();
    EXPECT_GT(b.learnedWait(), 4 * initial)
        << "the EWMA should chase the straggler's window";
}

TEST(AdaptiveBarrier, EstimatorDecaysOnSmallSamples)
{
    // Deterministic unit test of the learning rule: small observed
    // windows must pull an inflated estimate down.
    AdaptiveBarrierConfig cfg;
    cfg.initialGuess = 1 << 16;
    AdaptiveBarrier b(2, cfg);
    for (int i = 0; i < 64; ++i)
        b.noteWindowSample(64);
    EXPECT_LE(b.learnedWait(), 64u);
}

TEST(AdaptiveBarrier, EstimatorGrowsOnLargeSamples)
{
    AdaptiveBarrierConfig cfg;
    cfg.initialGuess = 8;
    AdaptiveBarrier b(2, cfg);
    for (int i = 0; i < 64; ++i)
        b.noteWindowSample(1 << 16);
    EXPECT_GE(b.learnedWait(), (1u << 16) / 8);
    EXPECT_LE(b.learnedWait(), cfg.maxWait);
}

TEST(AdaptiveBarrier, EstimatorRespectsClamps)
{
    AdaptiveBarrierConfig cfg;
    cfg.minWait = 16;
    cfg.maxWait = 1024;
    AdaptiveBarrier b(2, cfg);
    for (int i = 0; i < 100; ++i)
        b.noteWindowSample(0);
    EXPECT_EQ(b.learnedWait(), 16u);
    for (int i = 0; i < 100; ++i)
        b.noteWindowSample(1ULL << 40);
    EXPECT_EQ(b.learnedWait(), 1024u);
}

TEST(AdaptiveBarrier, PollsFarBelowBusyWaitWithStragglers)
{
    // The point of adapting: orders of magnitude fewer shared polls
    // than busy waiting while a straggler is milliseconds late.
    const auto adaptive_polls = [] {
        AdaptiveBarrier b(2);
        std::thread straggler([&] {
            for (int i = 0; i < 8; ++i) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                b.arriveAndWait();
            }
        });
        for (int i = 0; i < 8; ++i)
            b.arriveAndWait();
        straggler.join();
        return b.totalPolls();
    }();
    const auto busy_polls = [] {
        BarrierConfig cfg;
        cfg.policy = BarrierPolicy::None;
        SpinBarrier b(2, cfg);
        std::thread straggler([&] {
            for (int i = 0; i < 8; ++i) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                b.arriveAndWait();
            }
        });
        for (int i = 0; i < 8; ++i)
            b.arriveAndWait();
        straggler.join();
        return b.totalPolls();
    }();
    EXPECT_LT(adaptive_polls * 10, busy_polls);
}
