/**
 * @file
 * Contention-feedback adaptive backoff tests.
 *
 * Three layers, mirroring the design:
 *
 *  - support::AdaptiveRetuner: the pure-integer control law, asserted
 *    counter-exactly (every observe() step's base/cap/history checked
 *    against hand-computed values);
 *  - runtime::AdaptiveBackoffController + AdaptiveSpinBackoff: window
 *    accumulation, the escalation ladder, the shift clamp, the view's
 *    copy-starts-a-fresh-wait contract, and the RetuneHub edge
 *    protocol (trip -> forceWide + forced park, rearm -> reset), with
 *    stale pre-construction hub state explicitly ignored;
 *  - end to end: exhaustive 2-thread interleaving of the Adaptive
 *    barrier policy under VirtualSched (zero violations over the full
 *    bounded tree), seeded-schedule determinism, and the
 *    observatory-published watchdog-trip edge forcing escalation
 *    through a real Observatory driven by synchronous virtual-time
 *    ticks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/heartbeat.hpp"
#include "obs/observatory.hpp"
#include "obs/retune.hpp"
#include "runtime/adaptive_backoff.hpp"
#include "runtime/barrier.hpp"
#include "runtime/queue_lock.hpp"
#include "runtime/resource_pool.hpp"
#include "runtime/spinlock.hpp"
#include "support/adaptive_retuner.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;
namespace obs = absync::obs;
namespace sup = absync::support;

namespace
{

// --- the control law, counter-exactly --------------------------------

TEST(AdaptiveRetuner, CounterExactRetuneTrace)
{
    sup::AdaptiveRetuneConfig cfg;
    cfg.base = 8;
    cfg.cap = 256;
    cfg.capFloor = 64;
    cfg.capCeiling = 1024;
    cfg.highFails = 8;
    cfg.lowFails = 2;
    cfg.historyShift = 1;
    sup::AdaptiveRetuner r(cfg);

    EXPECT_EQ(r.base(), 8u);
    EXPECT_EQ(r.cap(), 256u);
    EXPECT_EQ(r.history(), 0);

    // Sample 32: ewma += (32 - 0) >> 1 = 16 >= highFails -> widen.
    EXPECT_EQ(r.observe(32), sup::RetuneStep::Widened);
    EXPECT_EQ(r.history(), 16);
    EXPECT_EQ(r.cap(), 512u);
    EXPECT_EQ(r.base(), 16u);

    // Sample 32 again: ewma += (32 - 16) >> 1 = 8 -> 24 -> widen;
    // cap hits the ceiling.
    EXPECT_EQ(r.observe(32), sup::RetuneStep::Widened);
    EXPECT_EQ(r.history(), 24);
    EXPECT_EQ(r.cap(), 1024u);
    EXPECT_EQ(r.base(), 32u);

    // Widening against the ceiling saturates instead of wrapping.
    EXPECT_EQ(r.observe(32), sup::RetuneStep::Widened);
    EXPECT_EQ(r.cap(), 1024u);
    EXPECT_EQ(r.base(), 64u);

    // Quiet samples decay the history; (0-28)>>1 is arithmetic, so
    // the ewma halves toward zero: 28 -> 14 -> 7.
    EXPECT_EQ(r.history(), 28);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Widened); // 14 >= 8
    EXPECT_EQ(r.history(), 14);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Hold); // 7: between
    EXPECT_EQ(r.history(), 7);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Hold); // 3 (7 + (-7>>1))
    EXPECT_EQ(r.history(), 3);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Narrowed); // 1 <= 2
    EXPECT_EQ(r.history(), 1);
    EXPECT_EQ(r.cap(), 512u);
    EXPECT_EQ(r.base(), 64u);

    // Narrowing respects the floor.
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Narrowed);
    EXPECT_EQ(r.cap(), 256u);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Narrowed);
    EXPECT_EQ(r.cap(), 128u);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Narrowed);
    EXPECT_EQ(r.cap(), 64u);
    EXPECT_EQ(r.observe(0), sup::RetuneStep::Narrowed);
    EXPECT_EQ(r.cap(), 64u); // clamped at capFloor
}

TEST(AdaptiveRetuner, ForceWideAndRearm)
{
    sup::AdaptiveRetuneConfig cfg;
    cfg.base = 4;
    cfg.cap = 128;
    cfg.capCeiling = 4096;
    sup::AdaptiveRetuner r(cfg);

    r.forceWide();
    EXPECT_EQ(r.cap(), 4096u);
    EXPECT_EQ(r.base(), 4u); // base kept at the configured start

    r.rearm();
    EXPECT_EQ(r.cap(), 128u);
    EXPECT_EQ(r.base(), 4u);
    EXPECT_EQ(r.history(), 0);
}

TEST(AdaptiveRetuner, NormalizesDegenerateConfigs)
{
    sup::AdaptiveRetuneConfig cfg;
    cfg.base = 0;
    cfg.cap = 0;
    cfg.capFloor = 0;
    cfg.capCeiling = 0;
    cfg.lowFails = 9;
    cfg.highFails = 3;
    sup::AdaptiveRetuner r(cfg);
    EXPECT_GE(r.base(), 1u);
    EXPECT_GE(r.cap(), 1u);
    EXPECT_LE(r.base(), r.cap());
    EXPECT_LE(r.config().lowFails, r.config().highFails);
}

// --- the controller --------------------------------------------------

rt::AdaptiveBackoffConfig
smallConfig()
{
    rt::AdaptiveBackoffConfig cfg;
    cfg.retune.base = 4;
    cfg.retune.cap = 64;
    cfg.retune.capFloor = 8;
    cfg.retune.capCeiling = 1 << 12;
    cfg.retune.highFails = 8;
    cfg.retune.lowFails = 2;
    cfg.window = 2;
    cfg.yieldThreshold = 32;
    cfg.parkThreshold = 64;
    return cfg;
}

TEST(AdaptiveController, IntervalGrowsFromBaseAndClampsAtCap)
{
    rt::AdaptiveBackoffController c(smallConfig());
    EXPECT_EQ(c.base(), 4u);
    EXPECT_EQ(c.cap(), 64u);
    EXPECT_EQ(c.intervalFor(0), 4u);
    EXPECT_EQ(c.intervalFor(1), 8u);
    EXPECT_EQ(c.intervalFor(2), 16u);
    EXPECT_EQ(c.intervalFor(3), 32u);
    EXPECT_EQ(c.intervalFor(4), 64u);
    EXPECT_EQ(c.intervalFor(5), 64u); // clamped
    // Pathological poll counts can never wrap the shift.
    EXPECT_EQ(c.intervalFor(63), 64u);
    EXPECT_EQ(c.intervalFor(~0ull), 64u);
}

TEST(AdaptiveController, EscalationLadderByWindowLength)
{
    rt::AdaptiveBackoffController c(smallConfig());
    EXPECT_EQ(c.levelFor(1), rt::EscalationLevel::Spin);
    EXPECT_EQ(c.levelFor(31), rt::EscalationLevel::Spin);
    EXPECT_EQ(c.levelFor(32), rt::EscalationLevel::Yield);
    EXPECT_EQ(c.levelFor(63), rt::EscalationLevel::Yield);
    EXPECT_EQ(c.levelFor(64), rt::EscalationLevel::Park);
}

TEST(AdaptiveController, StarvedWaitEscalatesPastNarrowedSchedule)
{
    // Regression: under an unfair primitive one thread can monopolize
    // the lock with zero-fail acquires, the window average narrows
    // the schedule to its floor, and the published cap alone would
    // pin the starving waiters to the Spin rung forever — burning
    // the very core the holder needs.  The ladder must also honor
    // the wait's own fail count.
    rt::AdaptiveBackoffController c(smallConfig());
    for (int i = 0; i < 64; ++i)
        c.recordWait(0); // the monopolist's rosy feedback
    EXPECT_EQ(c.cap(), 8u); // narrowed to the floor, below yield=32
    // The published schedule says "spin", even deep into a wait...
    EXPECT_EQ(c.levelFor(c.intervalFor(50)),
              rt::EscalationLevel::Spin);
    // ...but the wait's own futility still climbs the ladder
    // (config base 4: 4<<3 = 32 = yield, 4<<4 = 64 = park).
    EXPECT_EQ(c.levelForWait(c.intervalFor(0), 0),
              rt::EscalationLevel::Spin);
    EXPECT_EQ(c.levelForWait(c.intervalFor(3), 3),
              rt::EscalationLevel::Yield);
    EXPECT_EQ(c.levelForWait(c.intervalFor(4), 4),
              rt::EscalationLevel::Park);
    EXPECT_EQ(c.levelForWait(c.intervalFor(60), 60),
              rt::EscalationLevel::Park); // shift-capped, no wrap
}

TEST(AdaptiveController, RetunesOncePerWindowCounterExactly)
{
    rt::AdaptiveBackoffController c(smallConfig()); // window = 2
    // Shadow the control law with an identically-configured retuner:
    // the controller must follow it step for step on the window
    // averages it forms.
    sup::AdaptiveRetuner shadow(smallConfig().retune);

    c.recordWait(30);
    EXPECT_EQ(c.retunes(), 0u); // window not full yet
    c.recordWait(34);
    EXPECT_EQ(c.retunes(), 1u);
    shadow.observe((30 + 34) / 2);
    EXPECT_EQ(c.base(), shadow.base());
    EXPECT_EQ(c.cap(), shadow.cap());
    EXPECT_EQ(c.widened(), 1u);

    c.recordWait(0);
    c.recordWait(0);
    shadow.observe(0);
    EXPECT_EQ(c.retunes(), 2u);
    EXPECT_EQ(c.base(), shadow.base());
    EXPECT_EQ(c.cap(), shadow.cap());
    EXPECT_EQ(c.waitsObserved(), 4u);
}

TEST(AdaptiveController, HubTripForcesEscalationExactlyOncePerEdge)
{
    obs::RetuneHub &hub = obs::RetuneHub::global();
    hub.resetForTest();

    rt::AdaptiveBackoffConfig cfg = smallConfig();
    cfg.consumeRetuneSignal = true;
    rt::AdaptiveBackoffController c(cfg);
    ASSERT_FALSE(c.escalationForced());

    // No edge yet: consuming is a no-op.
    c.consumeRetuneSignal();
    EXPECT_EQ(c.tripRetunes(), 0u);

    hub.trip();
    c.consumeRetuneSignal();
    EXPECT_TRUE(c.escalationForced());
    EXPECT_EQ(c.cap(), cfg.retune.capCeiling); // forced wide
    EXPECT_EQ(c.tripRetunes(), 1u);
    EXPECT_EQ(c.overloadRetunes(), 0u);
    // Every window is the park rung while the verdict is in force.
    EXPECT_EQ(c.levelFor(1), rt::EscalationLevel::Park);

    // Same edge consumed once: a second poll does nothing.
    c.consumeRetuneSignal();
    EXPECT_EQ(c.tripRetunes(), 1u);

    // Overload edge (no new trip) is attributed separately.
    hub.overload();
    c.consumeRetuneSignal();
    EXPECT_EQ(c.tripRetunes(), 1u);
    EXPECT_EQ(c.overloadRetunes(), 1u);

    // Recovery re-arms the schedule and clears the forcing.
    hub.rearm();
    c.consumeRetuneSignal();
    EXPECT_FALSE(c.escalationForced());
    EXPECT_EQ(c.signalRearms(), 1u);
    EXPECT_EQ(c.base(), cfg.retune.base);
    EXPECT_EQ(c.cap(), cfg.retune.cap);

    hub.resetForTest();
}

TEST(AdaptiveController, StaleHubStateBeforeConstructionIsIgnored)
{
    obs::RetuneHub &hub = obs::RetuneHub::global();
    hub.resetForTest();
    hub.trip(); // an old verdict from some earlier workload

    rt::AdaptiveBackoffConfig cfg = smallConfig();
    cfg.consumeRetuneSignal = true;
    rt::AdaptiveBackoffController c(cfg);
    c.consumeRetuneSignal();
    EXPECT_FALSE(c.escalationForced());
    EXPECT_EQ(c.tripRetunes(), 0u);

    // A *new* edge after construction is consumed normally.
    hub.trip();
    c.consumeRetuneSignal();
    EXPECT_TRUE(c.escalationForced());
    EXPECT_EQ(c.tripRetunes(), 1u);

    hub.resetForTest();
}

// --- the per-wait view -----------------------------------------------

TEST(AdaptiveSpinBackoff, CopyStartsAFreshWaitAndDtorFoldsIt)
{
    rt::AdaptiveBackoffConfig cfg = smallConfig();
    cfg.window = 1; // every completed wait retunes
    rt::AdaptiveBackoffController c(cfg);

    rt::AdaptiveSpinBackoff proto(c);
    {
        rt::AdaptiveSpinBackoff wait = proto; // the lock() idiom
        EXPECT_EQ(wait.fails(), 0u);
        wait.noteFail();
        wait.noteFail();
        wait.noteFail();
        EXPECT_EQ(wait.fails(), 3u);
    }
    // Destructor folded exactly one wait of 3 fails.
    EXPECT_EQ(c.waitsObserved(), 1u);
    EXPECT_EQ(c.retunes(), 1u);

    // reset() folds and starts fresh on a reused instance.
    proto.noteFail();
    proto.reset();
    EXPECT_EQ(proto.fails(), 0u);
    EXPECT_EQ(c.waitsObserved(), 2u);
}

TEST(AdaptiveSpinBackoff, DrivesTtasLockUnderRealThreads)
{
    rt::AdaptiveBackoffController c(smallConfig());
    rt::TtasLock<rt::AdaptiveSpinBackoff> lock{
        rt::AdaptiveSpinBackoff(c)};
    // Constructing the lock copies (and destroys) one view, which
    // folds one empty wait; measure from here.
    const std::uint64_t base_waits = c.waitsObserved();

    constexpr int kThreads = 4;
    constexpr int kIters = 200;
    std::uint64_t counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                lock.lock();
                ++counter;
                lock.unlock();
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(counter,
              static_cast<std::uint64_t>(kThreads) * kIters);
    // Every lock() acquisition folded exactly one wait.
    EXPECT_EQ(c.waitsObserved() - base_waits,
              static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- adaptive policy end to end under VirtualSched -------------------

TEST(AdaptiveSchedules, ExhaustiveTwoThreadsZeroViolations)
{
    vt::BarrierEpisodeConfig cfg;
    cfg.kind = rt::BarrierKind::Flat;
    cfg.parties = 2;
    cfg.phases = 2;
    cfg.barrier.policy = rt::BarrierPolicy::Adaptive;

    vt::ExploreConfig xc;
    xc.branchDepth = 8;
    xc.maxRuns = 20000;
    const vt::ExploreReport rep =
        vt::exploreSchedules(vt::barrierPhasesFactory(cfg), xc);
    EXPECT_FALSE(rep.failed) << rep.failure;
    EXPECT_TRUE(rep.exhausted)
        << "bounded tree not fully enumerated within " << xc.maxRuns
        << " runs";
    EXPECT_GE(rep.interleavings, 2u);
}

TEST(AdaptiveSchedules, SeededScheduleIsDeterministic)
{
    vt::BarrierEpisodeConfig cfg;
    cfg.kind = rt::BarrierKind::Flat;
    cfg.parties = 3;
    cfg.phases = 3;
    cfg.barrier.policy = rt::BarrierPolicy::Adaptive;

    const vt::RunRecord a =
        vt::runSeededSchedule(vt::barrierPhasesFactory(cfg), 42);
    const vt::RunRecord b =
        vt::runSeededSchedule(vt::barrierPhasesFactory(cfg), 42);
    ASSERT_TRUE(a.completed) << a.failure;
    ASSERT_TRUE(b.completed) << b.failure;
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.trace, b.trace);
}

TEST(AdaptiveSchedules, QueueLocksAdaptiveFuzzZeroViolations)
{
    // The MCS/CLH grant waits paced adaptively, under seeded schedule
    // fuzzing: mutual exclusion is the invariant.
    for (const bool useClh : {false, true}) {
        const vt::EpisodeFactory factory =
            [useClh](vt::VirtualSched &sched) {
                auto owned = std::make_shared<int>(0);
                rt::QueueLockConfig qcfg;
                qcfg.maxThreads = 3;
                qcfg.adaptive = true;
                qcfg.sched = &sched;
                auto mcs = std::make_shared<rt::McsLock>(qcfg);
                auto clh = std::make_shared<rt::ClhLock>(qcfg);
                vt::Episode ep;
                for (std::uint32_t t = 0; t < 3; ++t) {
                    ep.bodies.push_back([=, &sched](std::uint32_t id) {
                        for (int i = 0; i < 2; ++i) {
                            if (useClh)
                                clh->lock(id);
                            else
                                mcs->lock(id);
                            sched.require(++*owned == 1,
                                          "mutual exclusion violated");
                            --*owned;
                            if (useClh)
                                clh->unlock(id);
                            else
                                mcs->unlock(id);
                        }
                    });
                }
                return ep;
            };
        vt::FuzzConfig fc;
        fc.runs = 60;
        const vt::FuzzReport rep = vt::fuzzSchedules(factory, fc);
        EXPECT_FALSE(rep.failed)
            << (useClh ? "clh" : "mcs") << " seed "
            << rep.failingSeed << ": " << rep.failure;
    }
}

// --- observatory closes the loop -------------------------------------

TEST(AdaptiveRetuneLoop, WatchdogTripForcesEscalationDeterministically)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    obs::RetuneHub &hub = obs::RetuneHub::global();
    hub.resetForTest();

    obs::ObservatoryConfig ocfg;
    ocfg.watchdogDeadlineNs = 1000;
    ocfg.publishRetune = true;
    ocfg.label = "adaptive_retune_loop";
    obs::Observatory o(ocfg); // ticked synchronously, never started

    rt::AdaptiveBackoffConfig cfg = smallConfig();
    cfg.consumeRetuneSignal = true;
    rt::AdaptiveBackoffController c(cfg);

    {
        // A wait whose heartbeat never advances: the sampler sights
        // it, then finds it frozen past the deadline.
        const obs::ScopedWaitHeartbeat hb("test", "frozen", 0);
        o.tickOnce(100); // sights the wait; baseline progress
        EXPECT_EQ(hub.epoch(), 0u);
        o.tickOnce(5000); // 4900ns frozen > 1000ns deadline: trip
        EXPECT_EQ(hub.tripCount(), 1u);
        EXPECT_EQ(hub.mode(), obs::RetuneMode::Degraded);

        c.consumeRetuneSignal();
        EXPECT_TRUE(c.escalationForced());
        EXPECT_EQ(c.tripRetunes(), 1u);
        EXPECT_EQ(c.cap(), cfg.retune.capCeiling);

        // Still stalled: degraded level holds, but no new edge fires
        // (the stall already tripped), so the controller sees
        // exactly one trip-attributed retune.
        o.tickOnce(9000);
        c.consumeRetuneSignal();
        EXPECT_EQ(c.tripRetunes(), 1u);
        EXPECT_EQ(hub.tripCount(), 1u);
    }

    // Wait closed: the next scan sees the stall cleared and
    // publishes recovery; the controller re-arms.
    o.tickOnce(10000);
    EXPECT_EQ(hub.mode(), obs::RetuneMode::Normal);
    c.consumeRetuneSignal();
    EXPECT_FALSE(c.escalationForced());
    EXPECT_EQ(c.signalRearms(), 1u);
    EXPECT_EQ(c.base(), cfg.retune.base);
    EXPECT_EQ(c.cap(), cfg.retune.cap);

    hub.resetForTest();
}

TEST(AdaptiveRetuneLoop, BarrierConsumesTripThroughItsWaitLoop)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    obs::RetuneHub &hub = obs::RetuneHub::global();
    hub.resetForTest();

    // The barrier's controller polls the hub at wait granularity:
    // publish a trip edge, run one barrier phase on real threads, and
    // the controller must have consumed it.
    rt::BarrierConfig bcfg;
    bcfg.policy = rt::BarrierPolicy::Adaptive;
    rt::SpinBarrier barrier(2, bcfg);

    hub.trip();
    std::thread peer([&] { barrier.arriveAndWait(); });
    barrier.arriveAndWait();
    peer.join();

    EXPECT_EQ(barrier.adaptiveController().tripRetunes(), 1u);
    EXPECT_TRUE(barrier.adaptiveController().escalationForced());

    // Recovery re-arms through the same path.
    hub.rearm();
    std::thread peer2([&] { barrier.arriveAndWait(); });
    barrier.arriveAndWait();
    peer2.join();
    EXPECT_EQ(barrier.adaptiveController().signalRearms(), 1u);
    EXPECT_FALSE(barrier.adaptiveController().escalationForced());

    hub.resetForTest();
}

// --- adaptive policy on the resource pool ----------------------------

TEST(AdaptivePool, AcquireReleaseUnderContention)
{
    rt::BackoffResource pool(2, rt::ResourcePolicy::Adaptive, 64);
    constexpr int kThreads = 4;
    constexpr int kIters = 100;
    std::atomic<std::uint32_t> peak{0};
    std::atomic<std::uint32_t> inside{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                pool.acquire();
                const std::uint32_t now =
                    inside.fetch_add(1, std::memory_order_acq_rel) +
                    1;
                std::uint32_t p =
                    peak.load(std::memory_order_relaxed);
                while (
                    now > p &&
                    !peak.compare_exchange_weak(
                        p, now, std::memory_order_relaxed)) {
                }
                inside.fetch_sub(1, std::memory_order_acq_rel);
                pool.release();
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_LE(peak.load(), 2u); // capacity held
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(AdaptivePool, TimedOutWaitStillFoldsIntoController)
{
    rt::BackoffResource pool(1, rt::ResourcePolicy::Adaptive, 64);
    pool.acquire(); // hold the only slot
    const rt::WaitResult r = pool.acquireFor(
        rt::deadlineAfter(std::chrono::milliseconds(5)));
    EXPECT_EQ(r, rt::WaitResult::Timeout);
    // The withdrawn wait's failed polls reached the controller.
    EXPECT_EQ(pool.adaptiveController().waitsObserved(), 1u);
    pool.release();
    pool.acquire(); // pool still consistent after the withdrawal
    pool.release();
}

} // namespace
