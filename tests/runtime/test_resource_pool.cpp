/** @file Tests for the waiter-proportional backoff resource. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/resource_pool.hpp"
#include "runtime/spin_backoff.hpp"

using namespace absync::runtime;

namespace
{

/** All threads acquire/release @p iters times; asserts the slot cap
 *  is never exceeded. */
void
stress(BackoffResource &res, std::uint32_t slots, unsigned threads,
       unsigned iters)
{
    std::atomic<int> inside{0};
    std::atomic<unsigned> violations{0};
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (unsigned i = 0; i < iters; ++i) {
                res.acquire();
                const int now =
                    inside.fetch_add(1, std::memory_order_acq_rel) +
                    1;
                if (now > static_cast<int>(slots))
                    violations.fetch_add(1);
                inside.fetch_sub(1, std::memory_order_acq_rel);
                res.release();
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(violations.load(), 0u);
    EXPECT_EQ(res.inUse(), 0u);
    EXPECT_EQ(res.waiters(), 0u);
}

} // namespace

TEST(Resource, SingleSlotIsALock)
{
    BackoffResource res(1, ResourcePolicy::Proportional);
    stress(res, 1, 4, 5000);
}

TEST(Resource, MultiSlotCapRespected)
{
    BackoffResource res(3, ResourcePolicy::Proportional);
    stress(res, 3, 8, 3000);
}

TEST(Resource, SpinPolicyWorks)
{
    BackoffResource res(2, ResourcePolicy::Spin);
    stress(res, 2, 4, 3000);
}

TEST(Resource, ExponentialPolicyWorks)
{
    BackoffResource res(2, ResourcePolicy::Exponential);
    stress(res, 2, 4, 3000);
}

TEST(Resource, TryAcquireSemantics)
{
    BackoffResource res(2);
    EXPECT_TRUE(res.tryAcquire());
    EXPECT_TRUE(res.tryAcquire());
    EXPECT_FALSE(res.tryAcquire());
    res.release();
    EXPECT_TRUE(res.tryAcquire());
    res.release();
    res.release();
    EXPECT_EQ(res.inUse(), 0u);
}

TEST(ResourceDeathTest, ReleaseWithoutAcquireAborts)
{
    // An unmatched release corrupts in_use_ silently (a free slot
    // appears out of thin air and the cap stops holding), so it is a
    // fail-fast abort rather than a wraparound.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    BackoffResource res(2);
    res.acquire();
    res.release();
    EXPECT_DEATH(res.release(), "release without matching acquire");
}

TEST(Resource, PollsAreCounted)
{
    BackoffResource res(1);
    res.acquire();
    res.release();
    EXPECT_GE(res.totalPolls(), 1u);
}

TEST(Resource, ProportionalPollsLessThanSpin)
{
    // With heavy contention, waiter-proportional backoff must poll
    // the shared counter far less than raw spinning (Section 8).
    const auto measure = [](ResourcePolicy policy) {
        BackoffResource res(1, policy, 256);
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < 8; ++t) {
            pool.emplace_back([&] {
                for (int i = 0; i < 300; ++i) {
                    res.acquire();
                    // Hold the resource a while.
                    absync::runtime::spinFor(500);
                    res.release();
                }
            });
        }
        for (auto &th : pool)
            th.join();
        return res.totalPolls();
    };
    const auto spin_polls = measure(ResourcePolicy::Spin);
    const auto prop_polls = measure(ResourcePolicy::Proportional);
    // <= rather than <: on an oversubscribed or heavily loaded host
    // the OS can serialize the threads so completely that both
    // policies see zero contention (1 poll per acquire each).  The
    // strict separation under controlled contention is asserted
    // deterministically in tests/core/test_resource_sim.cpp.
    EXPECT_LE(prop_polls, spin_polls);
}

TEST(Resource, AcquireForPastDeadlineOnFullPoolTimesOutImmediately)
{
    BackoffResource res(1, ResourcePolicy::Proportional);
    res.acquire();
    const Deadline past =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    EXPECT_EQ(res.acquireFor(past), WaitResult::Timeout);
    // Timeout means nothing acquired and no release owed: exactly one
    // slot (the original) is held, and releasing once empties it.
    EXPECT_EQ(res.inUse(), 1u);
    EXPECT_EQ(res.waiters(), 0u);
    EXPECT_GE(res.totalTimeouts(), 1u);
    res.release();
    EXPECT_EQ(res.inUse(), 0u);
}

TEST(Resource, AcquireForEpochDeadlineBehavesLikePast)
{
    // A default-constructed (epoch) deadline is in the distant past;
    // it must act as "do not wait at all", not wrap around.
    BackoffResource res(1);
    res.acquire();
    EXPECT_EQ(res.acquireFor(Deadline{}), WaitResult::Timeout);
    EXPECT_EQ(res.inUse(), 1u);
    res.release();
}

TEST(Resource, AcquireForPastDeadlineStillTakesAFreeSlot)
{
    // The fast path is try-then-check-deadline: a free slot is
    // granted even when the deadline has already passed, mirroring
    // the barriers' "arrival beats the clock" contract.
    BackoffResource res(1);
    const Deadline past =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    EXPECT_EQ(res.acquireFor(past), WaitResult::Ok);
    EXPECT_EQ(res.inUse(), 1u);
    res.release();
}

TEST(Resource, AcquireForOkWithinDeadlineUnderContention)
{
    BackoffResource res(1, ResourcePolicy::Exponential);
    res.acquire();
    std::thread holder([&res] {
        absync::runtime::spinFor(20000);
        res.release();
    });
    const WaitResult r =
        res.acquireFor(absync::runtime::deadlineAfter(
            std::chrono::seconds(30)));
    holder.join();
    EXPECT_EQ(r, WaitResult::Ok);
    EXPECT_EQ(res.inUse(), 1u);
    res.release();
    EXPECT_EQ(res.waiters(), 0u);
}
