/**
 * @file
 * Chrome-trace exporter tests: structural invariants plus a golden-
 * file comparison, and JSON round-trips for the counter exposition.
 *
 * The golden capture runs a 2-thread x 2-phase flat barrier episode
 * under VirtualSched with a scripted (round-robin) decider, so the
 * event stream — and after tid and timestamp normalization, the
 * exported JSON — is byte-identical on every run and every machine.
 * Regenerate the golden after an intentional schema change with:
 *
 *     ABSYNC_REGEN_GOLDEN=1 ./test_obs \
 *         --gtest_filter=ChromeTrace.GoldenFlat2x2
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/trace_ring.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;
namespace obs = absync::obs;

namespace
{

/** Capture one deterministic 2x2 flat episode's trace events. */
std::vector<obs::TraceEvent>
captureFlat2x2()
{
    obs::TraceRegistry::global().enable(1 << 12);
    vt::VirtualSched sched;
    vt::BarrierEpisodeConfig ecfg;
    ecfg.kind = rt::BarrierKind::Flat;
    ecfg.parties = 2;
    ecfg.phases = 2;
    ecfg.barrier.policy = rt::BarrierPolicy::Exponential;
    vt::Episode ep = vt::barrierPhasesEpisode(sched, ecfg, nullptr);
    vt::ScriptedDecider decider({}, 0); // pure round-robin
    const vt::RunRecord rec =
        sched.run(ep.bodies, decider, ep.stepInvariant);
    obs::TraceRegistry::global().disable();
    EXPECT_TRUE(rec.completed) << rec.failure;
    return obs::TraceRegistry::global().collect();
}

/**
 * Renumber tids densely in order of first appearance.  Ring tids are
 * process-lifetime monotonic, so without this the golden would depend
 * on which tests traced earlier in the same binary.
 */
void
normalizeTids(std::vector<obs::TraceEvent> &events)
{
    std::map<std::uint32_t, std::uint32_t> remap;
    for (obs::TraceEvent &e : events) {
        const auto [it, inserted] = remap.emplace(
            e.tid, static_cast<std::uint32_t>(remap.size()));
        e.tid = it->second;
    }
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle);
         pos != std::string::npos; pos = hay.find(needle, pos + 1))
        ++n;
    return n;
}

} // namespace

TEST(ChromeTrace, StructuralInvariants)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    std::vector<obs::TraceEvent> events = captureFlat2x2();
    ASSERT_FALSE(events.empty());

    // collect() returns a time-sorted stream.
    for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_LE(events[i - 1].ts, events[i].ts) << "at " << i;

    // Both threads arrive twice and are released twice.
    std::map<std::uint32_t, int> arrives, releases;
    for (const obs::TraceEvent &e : events) {
        if (e.kind == obs::EventKind::Arrive)
            ++arrives[e.tid];
        if (e.kind == obs::EventKind::Release)
            ++releases[e.tid];
    }
    ASSERT_EQ(arrives.size(), 2u);
    for (const auto &[tid, n] : arrives) {
        EXPECT_EQ(n, 2) << "tid " << tid;
        EXPECT_EQ(releases[tid], 2) << "tid " << tid;
    }

    const std::string json = obs::chromeTraceJson(events);
    // Schema keys and balanced duration pairs.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);
    EXPECT_NE(json.find("absync.chrome_trace.v1"), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), 4u);
}

TEST(ChromeTrace, GoldenFlat2x2)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    std::vector<obs::TraceEvent> events = captureFlat2x2();
    normalizeTids(events);
    const std::string json = obs::chromeTraceJson(events);

    const std::string path =
        std::string(ABSYNC_TEST_DATA_DIR) + "/chrome_trace_2x2.json";
    if (std::getenv("ABSYNC_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "golden regenerated at " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (regenerate with ABSYNC_REGEN_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(json, golden.str())
        << "chrome trace drifted from the golden capture; if the "
           "change is intentional, regenerate with "
           "ABSYNC_REGEN_GOLDEN=1";
}

TEST(ChromeTrace, EmptyStreamIsValidDocument)
{
    const std::string json = obs::chromeTraceJson({});
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("absync.chrome_trace.v1"), std::string::npos);
}

TEST(CounterJson, SnapshotRoundTrip)
{
    obs::CounterSnapshot in;
    std::uint64_t v = 1;
    in.forEachMut([&](const char *, std::uint64_t &field) {
        field = v * v + 3;
        ++v;
    });
    const std::string json = in.json();
    obs::CounterSnapshot out;
    ASSERT_TRUE(obs::parseCounterSnapshot(json, &out)) << json;
    EXPECT_TRUE(in == out) << json;
}

TEST(CounterJson, RejectsMissingKeys)
{
    obs::CounterSnapshot out;
    EXPECT_FALSE(obs::parseCounterSnapshot("{\"flag_polls\":1}", &out));
}

TEST(CounterJson, RegistryJsonCarriesSchemaAndTotal)
{
    const std::string json = obs::CounterRegistry::global().json();
    EXPECT_NE(json.find("absync.sync_counters.v1"), std::string::npos);
    EXPECT_NE(json.find("\"total\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\""), std::string::npos);
    obs::CounterSnapshot total;
    EXPECT_TRUE(obs::parseCounterSnapshot(json, &total));
}
