/**
 * @file
 * Fuzz-style negative tests for parseCounterSnapshot.  The parser is
 * a tolerant scanner over this library's own JSON output, but "our
 * own output" includes documents that crossed a pipe, were truncated
 * by a full disk, or were hand-edited — it must reject garbage with
 * `false`, never crash, and never half-write the output snapshot.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"

namespace obs = absync::obs;

namespace
{

obs::CounterSnapshot
sample()
{
    obs::CounterSnapshot s;
    s.flagPolls = 12;
    s.counterRmws = 34;
    s.backoffRequested = 56;
    s.backoffWaited = 55;
    s.parks = 1;
    s.wakes = 2;
    s.withdrawals = 3;
    s.timeouts = 4;
    s.episodes = 5;
    s.acquires = 6;
    return s;
}

/** A sentinel-filled snapshot to detect partial writes. */
obs::CounterSnapshot
poison()
{
    obs::CounterSnapshot s;
    s.forEachMut([](const char *, std::uint64_t &v) { v = 999; });
    return s;
}

bool
isPoisoned(const obs::CounterSnapshot &s)
{
    bool all = true;
    s.forEach([&](const char *, std::uint64_t v) {
        if (v != 999)
            all = false;
    });
    return all;
}

} // namespace

TEST(CounterFuzz, RoundTripStillParses)
{
    const obs::CounterSnapshot in = sample();
    obs::CounterSnapshot out;
    ASSERT_TRUE(obs::parseCounterSnapshot(in.json(), &out));
    EXPECT_EQ(out, in);
}

TEST(CounterFuzz, WhitespaceVariantsParse)
{
    obs::CounterSnapshot out;
    EXPECT_TRUE(obs::parseCounterSnapshot(
        "{ \"flag_polls\": 1 ,\n \"counter_rmws\":2,\n"
        "\"backoff_requested\":3, \"backoff_waited\":4,\n"
        "\"parks\":5, \"wakes\":6, \"withdrawals\":7,\n"
        "\"timeouts\":8, \"episodes\":9, \"acquires\":10 }",
        &out));
    EXPECT_EQ(out.flagPolls, 1u);
    EXPECT_EQ(out.acquires, 10u);
}

TEST(CounterFuzz, NullOutputPointerIsRejected)
{
    EXPECT_FALSE(
        obs::parseCounterSnapshot(sample().json(), nullptr));
}

TEST(CounterFuzz, MalformedDocumentsAreRejectedWithoutPartialWrites)
{
    const std::string good = sample().json();
    const std::vector<std::string> bad = {
        "",                             // empty document
        "{}",                           // no keys at all
        "null",                         // not an object
        "{\"flag_polls\":1}",           // most schema keys missing
        good.substr(0, good.size() / 2),      // truncated mid-document
        good.substr(0, good.find(":12") + 2), // truncated mid-number
        "{\"flag_polls\":-1,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10}", // negative value
        "{\"flag_polls\":1x,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10}", // trailing junk in number
        "{\"flag_polls\":99999999999999999999,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10}", // uint64 overflow
        "{\"flag_polls\":,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10}", // empty value
        "\"flag_polls\" \"counter_rmws\" \"backoff_requested\" "
        "\"backoff_waited\" \"parks\" \"wakes\" \"withdrawals\" "
        "\"timeouts\" \"episodes\" \"acquires\"", // keys, no values
    };
    for (const std::string &doc : bad) {
        obs::CounterSnapshot out = poison();
        EXPECT_FALSE(obs::parseCounterSnapshot(doc, &out))
            << "accepted malformed doc: " << doc;
        EXPECT_TRUE(isPoisoned(out))
            << "partial write from doc: " << doc;
    }
}

TEST(CounterFuzz, ObservatoryKeysAreOptionalForBackCompat)
{
    // Documents written before the live-observatory counters existed
    // carry only the v1 core keys: they must still parse, with the
    // newer fields (sampler_ticks, watchdog_trips, live_windows)
    // defaulting to zero.
    obs::CounterSnapshot out = poison();
    ASSERT_TRUE(obs::parseCounterSnapshot(
        "{\"flag_polls\":1,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10}",
        &out));
    EXPECT_EQ(out.samplerTicks, 0u);
    EXPECT_EQ(out.watchdogTrips, 0u);
    EXPECT_EQ(out.liveWindows, 0u);
}

TEST(CounterFuzz, ObservatoryKeysRoundTrip)
{
    obs::CounterSnapshot in = sample();
    in.samplerTicks = 111;
    in.watchdogTrips = 7;
    in.liveWindows = 109;
    const std::string json = in.json();
    EXPECT_NE(json.find("\"sampler_ticks\":111"), std::string::npos);
    EXPECT_NE(json.find("\"watchdog_trips\":7"), std::string::npos);
    EXPECT_NE(json.find("\"live_windows\":109"), std::string::npos);
    obs::CounterSnapshot out;
    ASSERT_TRUE(obs::parseCounterSnapshot(json, &out));
    EXPECT_EQ(out, in);
}

TEST(CounterFuzz, MalformedObservatoryValuesAreRejected)
{
    // A present-but-garbage optional key must fail the parse outright
    // (tolerant to absence, strict about nonsense), with no partial
    // write.
    const std::vector<std::string> bad = {
        "{\"flag_polls\":1,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10,\"sampler_ticks\":-4}",
        "{\"flag_polls\":1,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10,\"watchdog_trips\":true}",
        "{\"flag_polls\":1,\"counter_rmws\":2,"
        "\"backoff_requested\":3,\"backoff_waited\":4,\"parks\":5,"
        "\"wakes\":6,\"withdrawals\":7,\"timeouts\":8,"
        "\"episodes\":9,\"acquires\":10,\"live_windows\":}",
    };
    for (const std::string &doc : bad) {
        obs::CounterSnapshot out = poison();
        EXPECT_FALSE(obs::parseCounterSnapshot(doc, &out))
            << "accepted malformed doc: " << doc;
        EXPECT_TRUE(isPoisoned(out))
            << "partial write from doc: " << doc;
    }
}

TEST(CounterFuzz, MaxUint64ValueSurvives)
{
    obs::CounterSnapshot in = sample();
    in.flagPolls = ~std::uint64_t{0};
    obs::CounterSnapshot out;
    ASSERT_TRUE(obs::parseCounterSnapshot(in.json(), &out));
    EXPECT_EQ(out.flagPolls, ~std::uint64_t{0});
}

TEST(CounterFuzz, RandomMutationsNeverCrash)
{
    // Deterministic xorshift so failures replay: flip bytes of a
    // valid document at pseudo-random positions and parse the result.
    const std::string good = sample().json();
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    const auto next = [&x]() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int trial = 0; trial < 2000; ++trial) {
        std::string doc = good;
        const std::size_t flips = 1 + next() % 4;
        for (std::size_t f = 0; f < flips; ++f)
            doc[next() % doc.size()] =
                static_cast<char>(next() & 0xff);
        obs::CounterSnapshot out;
        // Any verdict is fine; surviving the parse is the test.
        (void)obs::parseCounterSnapshot(doc, &out);
    }
    SUCCEED();
}
