/**
 * @file
 * Counter-exact telemetry tests under VirtualSched.
 *
 * Every run here is a deterministic schedule (seeded decider over a
 * virtual clock), so the counters each virtual thread records are
 * exact values, not statistical ranges: one counter RMW per arrival,
 * one episode per completed phase, a closed-form backoff total for
 * the Variable policy, and requested == waited whenever no deadline
 * cuts a wait short.  ScopedCounters redirects each worker thread to
 * a test-owned slab, so the per-thread figures are isolated from the
 * global registry and from other tests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/counters.hpp"
#include "runtime/barrier_interface.hpp"
#include "runtime/spinlock.hpp"
#include "testing/barrier_episodes.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;
namespace obs = absync::obs;

namespace
{

struct CountedRun
{
    vt::RunRecord rec;
    std::vector<obs::CounterSnapshot> perThread;
    obs::CounterSnapshot total;
};

/** Run one barrier episode with per-thread counter slabs installed. */
CountedRun
runCounted(rt::BarrierKind kind, std::uint32_t parties,
           std::uint32_t phases, rt::BarrierPolicy policy,
           std::uint64_t seed)
{
    vt::VirtualSched sched;
    vt::BarrierEpisodeConfig ecfg;
    ecfg.kind = kind;
    ecfg.parties = parties;
    ecfg.phases = phases;
    ecfg.barrier.policy = policy;

    std::shared_ptr<vt::BarrierEpisodeState> state;
    vt::Episode ep = vt::barrierPhasesEpisode(sched, ecfg, &state);

    auto slabs =
        std::make_shared<std::vector<obs::SyncCounters>>(parties);
    for (auto &body : ep.bodies) {
        body = [inner = body, slabs](std::uint32_t id) {
            obs::ScopedCounters sc(&(*slabs)[id]);
            inner(id);
        };
    }

    vt::RandomDecider decider(seed);
    CountedRun out;
    out.rec = sched.run(ep.bodies, decider, ep.stepInvariant);
    out.perThread.reserve(parties);
    for (std::uint32_t i = 0; i < parties; ++i) {
        out.perThread.push_back((*slabs)[i].snapshot());
        out.total += out.perThread.back();
    }
    return out;
}

constexpr rt::BarrierPolicy kSpinPolicies[] = {
    rt::BarrierPolicy::None,
    rt::BarrierPolicy::Variable,
    rt::BarrierPolicy::Linear,
    rt::BarrierPolicy::Exponential,
};

/** Exact assertions that hold for every flat-barrier spin policy. */
void
checkFlatExact(const CountedRun &run, std::uint32_t parties,
               std::uint32_t phases, rt::BarrierPolicy policy)
{
    ASSERT_TRUE(run.rec.completed) << run.rec.failure;
    for (std::uint32_t t = 0; t < parties; ++t) {
        const obs::CounterSnapshot &c = run.perThread[t];
        // Exactly one F&A per arrival, one episode per phase.
        EXPECT_EQ(c.counterRmws, phases) << "thread " << t;
        EXPECT_EQ(c.episodes, phases) << "thread " << t;
        // Untimed, non-blocking: nothing withdraws, parks, or wakes.
        EXPECT_EQ(c.withdrawals, 0u) << "thread " << t;
        EXPECT_EQ(c.timeouts, 0u) << "thread " << t;
        EXPECT_EQ(c.parks, 0u) << "thread " << t;
        EXPECT_EQ(c.wakes, 0u) << "thread " << t;
        // No deadline ever cuts an untimed wait short.
        EXPECT_EQ(c.backoffRequested, c.backoffWaited)
            << "thread " << t;
    }
    // Each phase: every non-last arriver polls the sense word at
    // least once; the last arriver never enters the wait loop.
    EXPECT_GE(run.total.flagPolls,
              static_cast<std::uint64_t>(phases) * (parties - 1));
    EXPECT_EQ(run.total.accesses(),
              run.total.flagPolls + run.total.counterRmws);

    const rt::BarrierConfig defaults;
    if (policy == rt::BarrierPolicy::None) {
        EXPECT_EQ(run.total.backoffRequested, 0u);
        EXPECT_EQ(run.total.backoffWaited, 0u);
    } else if (policy == rt::BarrierPolicy::Variable) {
        // The pre-wait is the only backoff: arrival position p (0-
        // based) waits (parties-1-p) * perMissingArrival, and every
        // position 0..parties-2 occurs exactly once per phase, so
        // the total is schedule-independent.
        const std::uint64_t per_phase =
            defaults.perMissingArrival *
            (static_cast<std::uint64_t>(parties) * (parties - 1) / 2);
        EXPECT_EQ(run.total.backoffRequested, phases * per_phase);
        EXPECT_EQ(run.total.backoffWaited, phases * per_phase);
    }
}

} // namespace

TEST(CounterExact, Flat2x2EveryPolicy)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    for (const rt::BarrierPolicy policy : kSpinPolicies) {
        SCOPED_TRACE(static_cast<int>(policy));
        const CountedRun run =
            runCounted(rt::BarrierKind::Flat, 2, 2, policy, 11);
        checkFlatExact(run, 2, 2, policy);
    }
}

TEST(CounterExact, Flat4x2EveryPolicy)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    for (const rt::BarrierPolicy policy : kSpinPolicies) {
        SCOPED_TRACE(static_cast<int>(policy));
        const CountedRun run =
            runCounted(rt::BarrierKind::Flat, 4, 2, policy, 23);
        checkFlatExact(run, 4, 2, policy);
    }
}

TEST(CounterExact, EpisodesAgreeAcrossBarrierKinds)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    constexpr std::uint32_t parties = 4;
    constexpr std::uint32_t phases = 2;
    const rt::BarrierKind kinds[] = {
        rt::BarrierKind::Flat,
        rt::BarrierKind::TangYew,
        rt::BarrierKind::Tree,
        rt::BarrierKind::Adaptive,
    };
    for (const rt::BarrierKind kind : kinds) {
        SCOPED_TRACE(static_cast<int>(kind));
        const CountedRun run = runCounted(
            kind, parties, phases, rt::BarrierPolicy::None, 7);
        ASSERT_TRUE(run.rec.completed) << run.rec.failure;
        // The episode count is implementation-independent: every
        // thread completes every phase, whatever the arrival
        // topology (central counter, two cells, or a tree climb).
        EXPECT_EQ(run.total.episodes,
                  static_cast<std::uint64_t>(parties) * phases);
        for (std::uint32_t t = 0; t < parties; ++t)
            EXPECT_EQ(run.perThread[t].episodes, phases)
                << "thread " << t;
        EXPECT_EQ(run.total.withdrawals, 0u);
        EXPECT_EQ(run.total.timeouts, 0u);
    }
}

TEST(CounterExact, IdenticalSnapshotsAcrossRepeatedRuns)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    // The same seed must yield byte-identical counters, run after
    // run: the counters are a pure function of the schedule.
    const CountedRun a = runCounted(rt::BarrierKind::Flat, 4, 2,
                                    rt::BarrierPolicy::Exponential, 42);
    const CountedRun b = runCounted(rt::BarrierKind::Flat, 4, 2,
                                    rt::BarrierPolicy::Exponential, 42);
    const CountedRun c = runCounted(rt::BarrierKind::Flat, 4, 2,
                                    rt::BarrierPolicy::Exponential, 42);
    ASSERT_TRUE(a.rec.completed) << a.rec.failure;
    ASSERT_TRUE(b.rec.completed) << b.rec.failure;
    ASSERT_TRUE(c.rec.completed) << c.rec.failure;
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t i = 0; i < a.perThread.size(); ++i) {
        EXPECT_TRUE(a.perThread[i] == b.perThread[i]) << "thread " << i;
        EXPECT_TRUE(a.perThread[i] == c.perThread[i]) << "thread " << i;
    }
}

namespace
{

/** One thread times out against a barrier nobody else joins. */
CountedRun
runWithdrawal(rt::BarrierKind kind)
{
    vt::VirtualSched sched;
    rt::BarrierConfig bcfg;
    bcfg.policy = rt::BarrierPolicy::Exponential;
    bcfg.sched = &sched;
    auto barrier = std::shared_ptr<rt::AnyBarrier>(
        rt::makeBarrier(kind, 2, bcfg));

    auto slabs = std::make_shared<std::vector<obs::SyncCounters>>(2);
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([barrier, slabs, &sched](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        const rt::WaitResult r =
            barrier->arriveFor(id, sched.deadlineIn(200));
        if (r != rt::WaitResult::Timeout)
            sched.fail("expected a timeout with the partner absent");
    });
    bodies.push_back([slabs](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        // Burn virtual time without ever arriving.
        rt::spinFor(1000);
    });

    vt::RandomDecider decider(3);
    CountedRun out;
    out.rec = sched.run(bodies, decider);
    for (std::uint32_t i = 0; i < 2; ++i) {
        out.perThread.push_back((*slabs)[i].snapshot());
        out.total += out.perThread.back();
    }
    return out;
}

} // namespace

TEST(CounterExact, WithdrawalCountedExactlyOnce)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    // Flat barriers withdraw the arrival on timeout: exactly one
    // withdrawal AND one timeout.
    const rt::BarrierKind withdrawing[] = {
        rt::BarrierKind::Flat,
        rt::BarrierKind::TangYew,
        rt::BarrierKind::Adaptive,
    };
    for (const rt::BarrierKind kind : withdrawing) {
        SCOPED_TRACE(static_cast<int>(kind));
        const CountedRun run = runWithdrawal(kind);
        ASSERT_TRUE(run.rec.completed) << run.rec.failure;
        EXPECT_EQ(run.perThread[0].withdrawals, 1u);
        EXPECT_EQ(run.perThread[0].timeouts, 1u);
        EXPECT_EQ(run.perThread[0].episodes, 0u);
        EXPECT_EQ(run.perThread[1].withdrawals, 0u);
        // The abandoned wait slept less than its schedule asked for.
        EXPECT_LE(run.perThread[0].backoffWaited,
                  run.perThread[0].backoffRequested);
    }

    // The tree parks a continuation instead: a timeout but NO
    // withdrawal (the arrival stands until the thread resumes).
    const CountedRun tree = runWithdrawal(rt::BarrierKind::Tree);
    ASSERT_TRUE(tree.rec.completed) << tree.rec.failure;
    EXPECT_EQ(tree.perThread[0].withdrawals, 0u);
    EXPECT_EQ(tree.perThread[0].timeouts, 1u);
    EXPECT_EQ(tree.perThread[0].episodes, 0u);
}

TEST(CounterExact, SpinlocksUncontended)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    // Single thread, no contention: every figure is closed-form.
    {
        obs::SyncCounters slab;
        obs::ScopedCounters sc(&slab);
        rt::TasLock<> lock;
        for (int i = 0; i < 7; ++i) {
            lock.lock();
            lock.unlock();
        }
        const obs::CounterSnapshot c = slab.snapshot();
        EXPECT_EQ(c.acquires, 7u);
        EXPECT_EQ(c.counterRmws, 7u); // one exchange per lock
        EXPECT_EQ(c.flagPolls, 0u);
    }
    {
        obs::SyncCounters slab;
        obs::ScopedCounters sc(&slab);
        rt::TtasLock<> lock;
        for (int i = 0; i < 7; ++i) {
            lock.lock();
            lock.unlock();
        }
        const obs::CounterSnapshot c = slab.snapshot();
        EXPECT_EQ(c.acquires, 7u);
        EXPECT_EQ(c.counterRmws, 7u); // free on the first read
        EXPECT_EQ(c.flagPolls, 0u);   // never saw the lock held
    }
    {
        obs::SyncCounters slab;
        obs::ScopedCounters sc(&slab);
        rt::TicketLock lock;
        for (int i = 0; i < 7; ++i) {
            lock.lock();
            lock.unlock();
        }
        const obs::CounterSnapshot c = slab.snapshot();
        EXPECT_EQ(c.acquires, 7u);
        // F&A ticket on lock + F&A grant bump on unlock.
        EXPECT_EQ(c.counterRmws, 14u);
        EXPECT_EQ(c.flagPolls, 0u);
    }
}

TEST(CounterExact, ContendedSpinlockWaiterPollsTheFlag)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    // A TTAS waiter that finds the lock held records its contended
    // probes as flag polls — the traffic the queue-lock family is
    // built to eliminate (contrast: test_queue_locks.cpp asserts the
    // same schedule shape yields zero flag polls for MCS/CLH).
    vt::VirtualSched sched;
    auto lock = std::make_shared<rt::TtasLock<>>();
    auto slabs = std::make_shared<std::vector<obs::SyncCounters>>(2);
    auto a_locked = std::make_shared<bool>(false);
    auto b_spun = std::make_shared<bool>(false);

    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([=](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        lock->lock();
        *a_locked = true;
        while (!*b_spun)
            rt::cpuRelax();
        lock->unlock();
    });
    bodies.push_back([=](std::uint32_t id) {
        obs::ScopedCounters sc(&(*slabs)[id]);
        while (!*a_locked)
            rt::cpuRelax();
        // The next probe is guaranteed to find the lock held; only
        // then let the holder release.
        *b_spun = true;
        lock->lock();
        lock->unlock();
    });
    vt::RandomDecider decider(21);
    const vt::RunRecord rec = sched.run(bodies, decider);
    ASSERT_TRUE(rec.completed) << rec.failure;

    EXPECT_EQ((*slabs)[0].snapshot().flagPolls, 0u);
    EXPECT_GE((*slabs)[1].snapshot().flagPolls, 1u);
    EXPECT_EQ((*slabs)[0].snapshot().acquires, 1u);
    EXPECT_EQ((*slabs)[1].snapshot().acquires, 1u);
}
