/**
 * @file
 * Compile-gate tests: ABSYNC_TELEMETRY=OFF must turn the whole
 * recording API into no-ops — empty structs, null sinks, zero
 * snapshots — while ON keeps the slabs cache-line padded.  The
 * static_asserts make the no-op claim a compile-time fact, not a
 * runtime observation.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "obs/counters.hpp"
#include "obs/trace_ring.hpp"

namespace obs = absync::obs;

static_assert(obs::kTelemetryEnabled ==
                  (ABSYNC_TELEMETRY_ENABLED != 0),
              "kTelemetryEnabled must mirror the build gate");

#if ABSYNC_TELEMETRY_ENABLED

// ON: one slab per thread, padded so neighbours never false-share.
static_assert(alignof(obs::SyncCounters) == 64,
              "counter slabs must be cache-line aligned");
static_assert(sizeof(obs::SyncCounters) % 64 == 0,
              "counter slabs must fill whole cache lines");

#else // !ABSYNC_TELEMETRY_ENABLED

// OFF: the recording types carry no state at all.
static_assert(std::is_empty_v<obs::SyncCounters>,
              "no-op SyncCounters must be an empty struct");
static_assert(obs::currentCounters() == nullptr,
              "no-op builds have no counter sink");

#endif // ABSYNC_TELEMETRY_ENABLED

TEST(TelemetryGate, RecordPointsAreCallableInEveryBuild)
{
    // Compiles and runs whether or not telemetry is in the build;
    // with it off, all of this must be invisible.
    obs::countFlagPolls(3);
    obs::countCounterRmws();
    obs::countBackoff(100, 40);
    obs::countPark();
    obs::countWake();
    obs::countWithdrawal();
    obs::countTimeout();
    obs::countEpisode();
    obs::countAcquire();
    obs::countCyclesSkipped(17);
    obs::countEventsProcessed(4);
    obs::countArrivals(6);
    obs::countSheds(2);
    obs::countSaturatedWindows(1);
    obs::countSamplerTick();
    obs::countWatchdogTrip(2);
    obs::countLiveWindows(5);
    obs::tracePoint(obs::EventKind::Poll, 123, 4);
    SUCCEED();
}

TEST(TelemetryGate, ObservatoryCountersCaptureOrVanish)
{
    obs::SyncCounters mine;
    {
        obs::ScopedCounters sc(&mine);
        obs::countSamplerTick();
        obs::countSamplerTick();
        obs::countWatchdogTrip(3);
        obs::countLiveWindows(9);
    }
    const obs::CounterSnapshot snap = mine.snapshot();
    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(snap.samplerTicks, 2u);
        EXPECT_EQ(snap.watchdogTrips, 3u);
        EXPECT_EQ(snap.liveWindows, 9u);
    } else {
        EXPECT_TRUE(snap == obs::CounterSnapshot{});
    }
}

TEST(TelemetryGate, OpenSystemCountersCaptureOrVanish)
{
    obs::SyncCounters mine;
    {
        obs::ScopedCounters sc(&mine);
        obs::countArrivals(40);
        obs::countSheds(7);
        obs::countSaturatedWindows(3);
        obs::countCyclesSkipped(100);
        obs::countEventsProcessed(25);
    }
    const obs::CounterSnapshot snap = mine.snapshot();
    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(snap.arrivals, 40u);
        EXPECT_EQ(snap.sheds, 7u);
        EXPECT_EQ(snap.saturatedWindows, 3u);
        EXPECT_EQ(snap.cyclesSkipped, 100u);
        EXPECT_EQ(snap.eventsProcessed, 25u);
    } else {
        EXPECT_TRUE(snap == obs::CounterSnapshot{});
    }
}

TEST(TelemetryGate, ScopedCountersCaptureOrVanish)
{
    obs::SyncCounters mine;
    {
        obs::ScopedCounters sc(&mine);
        obs::countFlagPolls(5);
        obs::countBackoff(64, 48);
        obs::countEpisode();
    }
    const obs::CounterSnapshot snap = mine.snapshot();
    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(snap.flagPolls, 5u);
        EXPECT_EQ(snap.backoffRequested, 64u);
        EXPECT_EQ(snap.backoffWaited, 48u);
        EXPECT_EQ(snap.episodes, 1u);
    } else {
        EXPECT_TRUE(snap == obs::CounterSnapshot{});
    }
}

TEST(TelemetryGate, ScopedRecordingBypassesRegistry)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    const obs::CounterSnapshot before =
        obs::CounterRegistry::global().total();
    obs::SyncCounters mine;
    {
        obs::ScopedCounters sc(&mine);
        obs::countFlagPolls(1000);
    }
    const obs::CounterSnapshot after =
        obs::CounterRegistry::global().total();
    // Counts taken under a scoped slab never leak into the global
    // aggregate (other tests' recording may, so compare this thread's
    // contribution, which is the only writer here).
    EXPECT_EQ(after.flagPolls, before.flagPolls);
    EXPECT_EQ(mine.snapshot().flagPolls, 1000u);
}

TEST(TelemetryGate, OffBuildExposesZeroSnapshots)
{
    if (obs::kTelemetryEnabled)
        GTEST_SKIP() << "only meaningful with telemetry off";
    obs::countFlagPolls(99);
    EXPECT_TRUE(obs::CounterRegistry::global().total() ==
                obs::CounterSnapshot{});
    obs::TraceRegistry::global().enable();
    obs::tracePoint(obs::EventKind::Arrive, 1);
    EXPECT_TRUE(obs::TraceRegistry::global().collect().empty());
    obs::TraceRegistry::global().disable();
    EXPECT_FALSE(obs::traceActive());
}
