/**
 * @file
 * Tests for the absync.run_report.v1 writer: document shape, metric
 * overwrite semantics, section embedding, and file round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/counters.hpp"
#include "obs/run_report.hpp"

namespace obs = absync::obs;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(RunReport, EmptyDocumentShape)
{
    const obs::RunReport r("tool_x", "Title of X");
    const std::string json = r.json();
    EXPECT_NE(json.find("\"schema\":\"absync.run_report.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tool\":\"tool_x\""), std::string::npos);
    EXPECT_NE(json.find("\"title\":\"Title of X\""),
              std::string::npos);
    EXPECT_NE(
        json.find("\"paper_ref\":\"Agarwal & Cherian, ISCA 1989\""),
        std::string::npos);
    // The telemetry field records the build flavour truthfully.
    const std::string expect_tele = obs::kTelemetryEnabled
                                        ? "\"telemetry\":true"
                                        : "\"telemetry\":false";
    EXPECT_NE(json.find(expect_tele), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":{}"), std::string::npos);
    EXPECT_NE(json.find("\"sections\":{}"), std::string::npos);
    EXPECT_EQ(r.metricCount(), 0u);
}

TEST(RunReport, MetricsRenderAndDuplicatesOverwrite)
{
    obs::RunReport r("t", "T");
    r.addMetric("accesses.n64.exp2", 12.5);
    r.addMetric("wait.n64.exp2", 300);
    EXPECT_EQ(r.metricCount(), 2u);

    r.addMetric("accesses.n64.exp2", 13.25);
    EXPECT_EQ(r.metricCount(), 2u);

    const std::string json = r.json();
    EXPECT_NE(json.find("\"accesses.n64.exp2\":13.25"),
              std::string::npos);
    EXPECT_EQ(json.find(":12.5"), std::string::npos);
    EXPECT_NE(json.find("\"wait.n64.exp2\":300"), std::string::npos);
}

TEST(RunReport, TitleIsEscaped)
{
    const obs::RunReport r("t", "quo\"ted\ntitle");
    EXPECT_NE(r.json().find("\"title\":\"quo\\\"ted\\ntitle\""),
              std::string::npos);
}

TEST(RunReport, SectionsEmbedRawJson)
{
    obs::RunReport r("t", "T");
    r.addSection("profile", "{\"schema\":\"absync.profile.v1\"}");
    r.addSection("note", "[1,2,3]");
    const std::string json = r.json();
    EXPECT_NE(
        json.find(
            "\"profile\":{\"schema\":\"absync.profile.v1\"}"),
        std::string::npos);
    EXPECT_NE(json.find("\"note\":[1,2,3]"), std::string::npos);
}

TEST(RunReport, WriteFileRoundTrips)
{
    obs::RunReport r("round_trip", "Round trip");
    r.addMetric("m", 1.5);
    const std::string path =
        ::testing::TempDir() + "absync_run_report_test.json";
    ASSERT_TRUE(r.writeFile(path));
    // writeFile terminates the document with a newline.
    EXPECT_EQ(slurp(path), r.json() + "\n");
    std::remove(path.c_str());
}

TEST(RunReport, WriteFileFailsOnBadPath)
{
    const obs::RunReport r("t", "T");
    EXPECT_FALSE(r.writeFile("/nonexistent-dir-xyz/report.json"));
}
