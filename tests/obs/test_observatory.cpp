/**
 * @file
 * Observatory tests: heartbeat registry semantics, deterministic
 * stuck-waiter watchdog runs under VirtualSched, flight-recorder
 * JSONL via synchronous ticks, a postmortem golden file, and the
 * sampler thread smoke (the TSan surface).
 *
 * The watchdog runs are fully deterministic: worker threads wait
 * under a virtual scheduler, the "stuck" body stalls by yielding to
 * the scheduler hook directly (which, like a futex park, never pulses
 * its heartbeat) while the progressing body waits through spinFor
 * (which pulses); the watchdog scans from the step invariant, i.e.
 * only while every worker is parked.  Regenerate the postmortem
 * golden after an intentional schema change with:
 *
 *     ABSYNC_REGEN_GOLDEN=1 ./test_observatory \
 *         --gtest_filter=PostmortemGolden.Document
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/counters.hpp"
#include "obs/heartbeat.hpp"
#include "obs/observatory.hpp"
#include "obs/trace_ring.hpp"
#include "runtime/sched_hook.hpp"
#include "runtime/spin_backoff.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;
namespace obs = absync::obs;

// The whole observatory API must cost nothing when telemetry is
// compiled out: every recorder must be an empty class (the exposition
// structs — HeartbeatSample, WatchdogTrip, PostmortemReport,
// ObservatoryConfig — intentionally stay full; they are schema).
#if !ABSYNC_TELEMETRY_ENABLED
static_assert(std::is_empty_v<obs::ScopedWaitHeartbeat>,
              "OFF-build ScopedWaitHeartbeat must be a no-op");
static_assert(std::is_empty_v<obs::HeartbeatRegistry>,
              "OFF-build HeartbeatRegistry must be stateless");
static_assert(std::is_empty_v<obs::StuckWaiterWatchdog>,
              "OFF-build StuckWaiterWatchdog must be stateless");
static_assert(std::is_empty_v<obs::Observatory>,
              "OFF-build Observatory must be stateless");
#endif

namespace
{

std::uint64_t
nsOf(rt::SchedHook::TimePoint tp)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
        if (!line.empty())
            out.push_back(line);
    return out;
}

/** Deterministic non-trivial counter pattern for golden documents. */
obs::CounterSnapshot
patternedCounters(std::uint64_t salt)
{
    obs::CounterSnapshot c;
    std::uint64_t v = salt;
    c.forEachMut([&](const char *, std::uint64_t &field) {
        field = v * 3 + 1;
        ++v;
    });
    return c;
}

} // namespace

// --- heartbeat registry ----------------------------------------------

TEST(Heartbeat, PulseWithoutScopeIsHarmless)
{
    obs::heartbeatPulse(); // must not crash with no slot leased
}

TEST(Heartbeat, ScopeRegistersAttributionAndPulsesAdvanceEpoch)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    ASSERT_EQ(obs::HeartbeatRegistry::global().activeWaits(), 0u);
    {
        const obs::ScopedWaitHeartbeat hb("unit", "outer", 1000);
        EXPECT_EQ(obs::HeartbeatRegistry::global().activeWaits(), 1u);

        auto find_active = [] {
            for (const obs::HeartbeatSample &s :
                 obs::HeartbeatRegistry::global().snapshot())
                if (s.active)
                    return s;
            return obs::HeartbeatSample{};
        };
        obs::HeartbeatSample before = find_active();
        ASSERT_TRUE(before.active);
        EXPECT_STREQ(before.kind, "unit");
        EXPECT_STREQ(before.site, "outer");
        EXPECT_EQ(before.startNs, 1000u);

        obs::heartbeatPulse();
        obs::heartbeatPulse();
        obs::HeartbeatSample after = find_active();
        EXPECT_EQ(after.epoch, before.epoch + 2);

        {
            // Nested scope shadows the attribution...
            const obs::ScopedWaitHeartbeat inner("unit", "inner",
                                                 2000);
            obs::HeartbeatSample nested = find_active();
            EXPECT_STREQ(nested.site, "inner");
            EXPECT_EQ(nested.startNs, 2000u);
            EXPECT_EQ(obs::HeartbeatRegistry::global().activeWaits(),
                      1u)
                << "nesting is one wait, not two";
        }
        // ...and restores it on exit.
        obs::HeartbeatSample restored = find_active();
        EXPECT_STREQ(restored.site, "outer");
        EXPECT_EQ(restored.startNs, 1000u);
    }
    EXPECT_EQ(obs::HeartbeatRegistry::global().activeWaits(), 0u);
}

// --- watchdog, deterministic under VirtualSched ----------------------

TEST(Watchdog, ParkedWaiterTripsOnceProgressingNever)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    constexpr std::uint64_t kDeadline = 2000; // virtual ns
    obs::StuckWaiterWatchdog wd(kDeadline);

    vt::VirtualSched sched;
    std::vector<vt::VirtualSched::Body> bodies;
    // Stuck body: opens a wait scope, then stalls through the raw
    // scheduler hook — time passes, the heartbeat does not.  This is
    // exactly what a futex-parked (or wedged) waiter looks like.
    bodies.emplace_back([](std::uint32_t) {
        const obs::ScopedWaitHeartbeat hb("test", "stuck",
                                          rt::waitClockNowNs());
        for (int i = 0; i < 60; ++i)
            rt::currentSchedHook()->pauseFor(100);
    });
    // Progressing body: same wait length, but waits through spinFor,
    // which pulses the heartbeat each iteration.
    bodies.emplace_back([](std::uint32_t) {
        const obs::ScopedWaitHeartbeat hb("test", "progress",
                                          rt::waitClockNowNs());
        for (int i = 0; i < 60; ++i)
            rt::spinFor(100);
    });

    vt::ScriptedDecider decider({}, 0); // round-robin
    const vt::RunRecord rec = sched.run(bodies, decider, [&] {
        wd.scan(nsOf(sched.now()), obs::CounterSnapshot{});
        return std::string();
    });
    ASSERT_TRUE(rec.completed) << rec.failure;

    ASSERT_EQ(wd.trips().size(), 1u)
        << "one stall must trip exactly once";
    const obs::WatchdogTrip &trip = wd.trips()[0];
    EXPECT_EQ(trip.kind, "test");
    EXPECT_EQ(trip.site, "stuck");
    EXPECT_GE(trip.stuckNs, kDeadline);
}

TEST(Watchdog, FreshStallAfterProgressTripsAgain)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    constexpr std::uint64_t kDeadline = 2000;
    obs::StuckWaiterWatchdog wd(kDeadline);

    vt::VirtualSched sched;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.emplace_back([](std::uint32_t) {
        const obs::ScopedWaitHeartbeat hb("test", "two_stalls",
                                          rt::waitClockNowNs());
        for (int i = 0; i < 60; ++i) // first stall: trips
            rt::currentSchedHook()->pauseFor(100);
        rt::cpuRelax(); // progress: re-arms the watchdog
        for (int i = 0; i < 60; ++i) // second stall: trips anew
            rt::currentSchedHook()->pauseFor(100);
    });

    vt::ScriptedDecider decider({}, 0);
    const vt::RunRecord rec = sched.run(bodies, decider, [&] {
        wd.scan(nsOf(sched.now()), obs::CounterSnapshot{});
        return std::string();
    });
    ASSERT_TRUE(rec.completed) << rec.failure;

    ASSERT_EQ(wd.trips().size(), 2u);
    EXPECT_EQ(wd.trips()[0].site, "two_stalls");
    EXPECT_EQ(wd.trips()[1].site, "two_stalls");
}

TEST(Watchdog, TripDeltaCarriesCounterAttribution)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    obs::StuckWaiterWatchdog wd(100);
    obs::CounterSnapshot delta;
    delta.flagPolls = 77;
    {
        const obs::ScopedWaitHeartbeat hb("test", "attributed", 0);
        // First scan sights the wait (charging from startNs = 0);
        // second scan, past the deadline, trips with the delta.
        wd.scan(50, obs::CounterSnapshot{});
        ASSERT_EQ(wd.scan(500, delta), 1u);
    }
    ASSERT_EQ(wd.trips().size(), 1u);
    EXPECT_EQ(wd.trips()[0].delta.flagPolls, 77u);
}

// --- observatory: synchronous ticks + flight recorder ----------------

TEST(Observatory, TicksCloseWindowsAndLatchOnBacklogGrowth)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    const std::string path =
        ::testing::TempDir() + "obs_live_unit.jsonl";
    std::remove(path.c_str());

    std::uint64_t probed = 0;
    obs::ObservatoryConfig cfg;
    cfg.detector.trendWindows = 2;
    cfg.detector.minBacklog = 4;
    cfg.backlogProbe = [&] { return probed; };
    cfg.liveReportPath = path;
    cfg.label = "unit";
    obs::Observatory o(cfg);

    // Baseline tick, then strictly growing backlog past minBacklog:
    // the online growth verdict must latch.
    const std::uint64_t backlogs[] = {0, 6, 9, 12};
    std::uint64_t now = 1'000'000;
    for (std::uint64_t b : backlogs) {
        probed = b;
        obs::countArrivals(5);
        obs::countAcquire();
        o.tickOnce(now);
        now += 1'000'000;
    }

    EXPECT_EQ(o.windows(), 4u);
    EXPECT_EQ(o.samplerTicks(), 4u);
    EXPECT_TRUE(o.latched());
    EXPECT_GE(o.saturatedWindows(), 1u);
    EXPECT_EQ(o.backlogSeries().offered(), 4u);

    // Flight recorder: one window line per tick, schema-stamped.
    const std::vector<std::string> before = lines(slurp(path));
    ASSERT_EQ(before.size(), 4u);
    for (const std::string &line : before) {
        EXPECT_NE(line.find("\"schema\":\"absync.live_report.v1\""),
                  std::string::npos)
            << line;
        EXPECT_NE(line.find("\"kind\":\"window\""), std::string::npos);
        EXPECT_NE(line.find("\"label\":\"unit\""), std::string::npos);
    }

    // finalize appends the postmortem line exactly once.
    const std::string doc = o.finalize("unit_test");
    EXPECT_NE(doc.find("\"kind\":\"postmortem\""), std::string::npos);
    EXPECT_NE(doc.find("\"reason\":\"unit_test\""), std::string::npos);
    o.finalize("again"); // idempotent: still returns a document...
    const std::vector<std::string> after = lines(slurp(path));
    EXPECT_EQ(after.size(), 5u) << "...but writes no second line";
    EXPECT_NE(after.back().find("\"kind\":\"postmortem\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Observatory, AppendSinkSpansInstances)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    const std::string path =
        ::testing::TempDir() + "obs_live_append.jsonl";
    std::remove(path.c_str());

    for (int row = 0; row < 2; ++row) {
        obs::ObservatoryConfig cfg;
        cfg.liveReportPath = path;
        cfg.appendSink = row > 0;
        cfg.label = row == 0 ? "row0" : "row1";
        obs::Observatory o(cfg);
        o.tickOnce(1000);
        o.finalize("row_end");
    }
    const std::vector<std::string> all = lines(slurp(path));
    ASSERT_EQ(all.size(), 4u); // 2 rows x (window + postmortem)
    EXPECT_NE(all[0].find("row0"), std::string::npos);
    EXPECT_NE(all[2].find("row1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Observatory, PostmortemSeesOpenWaitsAndWatchdogState)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    obs::ObservatoryConfig cfg;
    cfg.watchdogDeadlineNs = 100;
    cfg.label = "pm";
    obs::Observatory o(cfg);

    const obs::ScopedWaitHeartbeat hb("test", "pm_wait", 0);
    o.tickOnce(50);   // sights the wait
    o.tickOnce(5000); // trips it
    const obs::PostmortemReport r = o.postmortem("inspect");
    EXPECT_EQ(r.reason, "inspect");
    EXPECT_EQ(r.label, "pm");
    EXPECT_GE(r.activeWaits, 1u);
    ASSERT_GE(r.trips.size(), 1u);
    EXPECT_EQ(r.trips[0].site, "pm_wait");
    EXPECT_EQ(r.samplerTicks, 2u);
}

TEST(Observatory, SamplerThreadTicksOnItsOwn)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";

    obs::ObservatoryConfig cfg;
    cfg.samplePeriodNs = 1'000'000; // 1 ms
    cfg.label = "smoke";
    obs::Observatory o(cfg);
    o.start();
    o.start(); // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    o.stop();
    o.stop(); // idempotent
    EXPECT_GE(o.samplerTicks(), 1u);
    EXPECT_EQ(o.windows(), o.samplerTicks());
    EXPECT_GT(o.samplerBusyNs(), 0u);
}

// --- no-op build surface ---------------------------------------------

#if !ABSYNC_TELEMETRY_ENABLED
TEST(ObservatoryOff, EverythingReadsEmpty)
{
    obs::ObservatoryConfig cfg;
    cfg.label = "off";
    obs::Observatory o(cfg);
    o.start();
    o.tickOnce(123);
    o.stop();
    EXPECT_EQ(o.windows(), 0u);
    EXPECT_FALSE(o.latched());
    EXPECT_EQ(o.samplerTicks(), 0u);
    EXPECT_TRUE(o.watchdog().trips().empty());
    EXPECT_EQ(o.arrivalSeries().offered(), 0u);

    obs::StuckWaiterWatchdog wd(100);
    const obs::ScopedWaitHeartbeat hb("test", "off", 0);
    obs::heartbeatPulse();
    EXPECT_EQ(wd.scan(1'000'000, obs::CounterSnapshot{}), 0u);
    EXPECT_EQ(obs::HeartbeatRegistry::global().activeWaits(), 0u);

    const std::string doc = o.finalize("off");
    EXPECT_NE(doc.find("\"kind\":\"postmortem\""), std::string::npos);
}
#endif

// --- postmortem golden (schema is always compiled) -------------------

TEST(PostmortemGolden, Document)
{
    // Hand-built report with fixed tids/timestamps: the document is
    // byte-identical on every machine and in both telemetry builds.
    obs::PostmortemReport r;
    r.reason = "golden";
    r.label = "unit.golden \"quoted\"";
    r.tsNs = 123456789;
    r.samplerTicks = 7;
    r.samplerBusyNs = 4200;
    r.detectorWindows = 7;
    r.detectorSaturatedWindows = 2;
    r.saturatedNow = false;
    r.latched = true;
    r.activeWaits = 1;
    r.counters = patternedCounters(1);

    obs::WatchdogTrip trip;
    trip.tid = 0;
    trip.kind = "resource_pool";
    trip.site = "acquire";
    trip.epoch = 41;
    trip.startNs = 1000;
    trip.stuckNs = 9000;
    trip.delta = patternedCounters(2);
    r.trips.push_back(trip);

    obs::TraceEvent ev;
    ev.ts = 10;
    ev.arg = 1;
    ev.tid = 0;
    ev.kind = obs::EventKind::Arrive;
    r.events.push_back(ev);
    ev.ts = 20;
    ev.arg = 0;
    ev.tid = 1;
    ev.kind = obs::EventKind::Park;
    r.events.push_back(ev);
    r.droppedEvents = 3;

    const std::string json = r.json();
    // Structural spot checks independent of the golden file.
    EXPECT_EQ(json.find('\n'), std::string::npos) << "one JSONL line";
    EXPECT_NE(json.find("\"schema\":\"absync.live_report.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"postmortem\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos)
        << "labels must be JSON-escaped";

    const std::string path =
        std::string(ABSYNC_TEST_DATA_DIR) + "/postmortem_report.json";
    if (std::getenv("ABSYNC_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "golden regenerated at " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (regenerate with ABSYNC_REGEN_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(json, golden.str())
        << "postmortem document drifted from the golden capture; if "
           "the change is intentional, regenerate with "
           "ABSYNC_REGEN_GOLDEN=1";
}
