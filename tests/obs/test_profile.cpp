/**
 * @file
 * Tests for the contention-attribution profile layer: snapshot math,
 * gated recorders (empty-struct-pinned under ABSYNC_TELEMETRY=OFF),
 * and the absync.profile.v1 rendering.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "obs/profile.hpp"
#include "support/histogram.hpp"

namespace obs = absync::obs;
using absync::support::IntHistogram;

#if !ABSYNC_TELEMETRY_ENABLED

// OFF: the recorders must compile down to stateless shells, exactly
// like SyncCounters does — adding a member to the no-op variants is a
// build error here, not a silent overhead regression.
static_assert(std::is_empty_v<obs::WaitProfile>,
              "no-op WaitProfile must be an empty struct");
static_assert(std::is_empty_v<obs::StageOccupancyProfile>,
              "no-op StageOccupancyProfile must be an empty struct");
static_assert(std::is_empty_v<obs::InvalFanoutProfile>,
              "no-op InvalFanoutProfile must be an empty struct");

#endif // !ABSYNC_TELEMETRY_ENABLED

TEST(QuantileSummary, JsonShape)
{
    obs::QuantileSummary s;
    s.count = 4;
    s.mean = 2.5;
    s.p50 = 2;
    s.p90 = 4;
    s.p99 = 4;
    s.max = 4;
    EXPECT_EQ(s.json(), "{\"count\":4,\"mean\":2.5,\"p50\":2,"
                        "\"p90\":4,\"p99\":4,\"max\":4}");
}

TEST(QuantileSummary, SummarizeHistogram)
{
    IntHistogram h;
    for (std::uint64_t v = 1; v <= 10; ++v)
        h.add(v);
    const obs::QuantileSummary s = obs::summarizeHistogram(h);
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.mean, 5.5);
    EXPECT_EQ(s.p50, 5u);
    EXPECT_EQ(s.p90, 9u);
    EXPECT_EQ(s.p99, 10u);
    EXPECT_EQ(s.max, 10u);
}

TEST(QuantileSummary, SummarizeEmptyHistogram)
{
    const obs::QuantileSummary s =
        obs::summarizeHistogram(IntHistogram{});
    EXPECT_EQ(s, obs::QuantileSummary{});
}

TEST(ModuleHeat, ContentionAndAccumulate)
{
    obs::ModuleHeatSnapshot m;
    m.label = "flag";
    m.grants = 25;
    m.denials = 75;
    EXPECT_EQ(m.requests(), 100u);
    EXPECT_DOUBLE_EQ(m.contention(), 0.75);

    obs::ModuleHeatSnapshot other;
    other.label = "ignored";
    other.grants = 75;
    other.denials = 25;
    other.stallCycles = 3;
    m += other;
    EXPECT_EQ(m.label, "flag");
    EXPECT_EQ(m.grants, 100u);
    EXPECT_EQ(m.denials, 100u);
    EXPECT_EQ(m.stallCycles, 3u);
    EXPECT_DOUBLE_EQ(m.contention(), 0.5);
}

TEST(ModuleHeat, EmptyModuleHasZeroContention)
{
    const obs::ModuleHeatSnapshot m;
    EXPECT_DOUBLE_EQ(m.contention(), 0.0);
}

TEST(ModuleHeat, JsonShape)
{
    obs::ModuleHeatSnapshot m;
    m.label = "variable";
    m.grants = 3;
    m.denials = 1;
    EXPECT_EQ(m.json(),
              "{\"label\":\"variable\",\"grants\":3,\"denials\":1,"
              "\"stall_cycles\":0,\"contention\":0.25}");
}

TEST(CounterSeries, PeakAndMean)
{
    obs::CounterSeries c;
    EXPECT_DOUBLE_EQ(c.peak(), 0.0);
    EXPECT_DOUBLE_EQ(c.mean(), 0.0);
    c.samples = {{0, 0.5}, {10, 1.5}, {20, 1.0}};
    EXPECT_DOUBLE_EQ(c.peak(), 1.5);
    EXPECT_DOUBLE_EQ(c.mean(), 1.0);
}

TEST(AddressClass, Names)
{
    EXPECT_STREQ(
        obs::addressClassName(obs::AddressClass::SyncCounter),
        "sync_counter");
    EXPECT_STREQ(obs::addressClassName(obs::AddressClass::SyncFlag),
                 "sync_flag");
    EXPECT_STREQ(obs::addressClassName(obs::AddressClass::Data),
                 "data");
}

TEST(WaitProfile, RecordsOrVanishes)
{
    obs::WaitProfile w;
    w.add(10);
    w.add(20);
    w.add(20);
    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(w.count(), 3u);
        const obs::QuantileSummary s = w.summary();
        EXPECT_EQ(s.p50, 20u);
        EXPECT_EQ(s.max, 20u);
        obs::WaitProfile other;
        other.add(100);
        w.merge(other);
        EXPECT_EQ(w.count(), 4u);
        EXPECT_EQ(w.summary().max, 100u);
        w.clear();
        EXPECT_EQ(w.count(), 0u);
    } else {
        EXPECT_EQ(w.count(), 0u);
        EXPECT_EQ(w.summary(), obs::QuantileSummary{});
    }
}

TEST(StageOccupancy, SeriesAccumulateInFirstUseOrder)
{
    obs::StageOccupancyProfile p;
    p.sample("stage0", 0, 0.1);
    p.sample("hot_tree", 0, 0.9);
    p.sample("stage0", 10, 0.3);
    if (obs::kTelemetryEnabled) {
        ASSERT_EQ(p.series().size(), 2u);
        EXPECT_EQ(p.series()[0].name, "stage0");
        EXPECT_EQ(p.series()[1].name, "hot_tree");
        ASSERT_EQ(p.series()[0].samples.size(), 2u);
        EXPECT_DOUBLE_EQ(p.peak("stage0"), 0.3);
        EXPECT_DOUBLE_EQ(p.mean("stage0"), 0.2);
        EXPECT_DOUBLE_EQ(p.peak("hot_tree"), 0.9);
        EXPECT_DOUBLE_EQ(p.peak("absent"), 0.0);
        EXPECT_FALSE(p.empty());
    } else {
        EXPECT_TRUE(p.empty());
        EXPECT_TRUE(p.series().empty());
        EXPECT_DOUBLE_EQ(p.peak("stage0"), 0.0);
    }
}

TEST(InvalFanout, AttributesByClass)
{
    obs::InvalFanoutProfile p;
    p.record(obs::AddressClass::SyncFlag, 63);
    p.record(obs::AddressClass::SyncFlag, 63);
    p.record(obs::AddressClass::Data, 1);
    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(p.events(obs::AddressClass::SyncFlag), 2u);
        EXPECT_EQ(p.messages(obs::AddressClass::SyncFlag), 126u);
        EXPECT_EQ(p.events(obs::AddressClass::Data), 1u);
        EXPECT_EQ(p.messages(obs::AddressClass::Data), 1u);
        EXPECT_EQ(p.events(obs::AddressClass::SyncCounter), 0u);
        EXPECT_EQ(p.fanout(obs::AddressClass::SyncFlag).max, 63u);
    } else {
        EXPECT_EQ(p.events(obs::AddressClass::SyncFlag), 0u);
        EXPECT_EQ(p.messages(obs::AddressClass::SyncFlag), 0u);
    }
}

TEST(ProfileBuilder, EmptyDocumentIsWellFormed)
{
    const std::string json = obs::ProfileBuilder{}.json();
    EXPECT_EQ(json, "{\"schema\":\"absync.profile.v1\","
                    "\"modules\":[],\"waits\":{},\"occupancy\":{},"
                    "\"inval_fanout\":{}}");
}

TEST(ProfileBuilder, RendersAllSections)
{
    obs::ProfileBuilder b;

    obs::ModuleHeatSnapshot m;
    m.label = "flag";
    m.grants = 10;
    m.denials = 30;
    b.addModule(m);

    obs::QuantileSummary w;
    w.count = 2;
    w.mean = 15.0;
    w.p50 = 10;
    w.p90 = 20;
    w.p99 = 20;
    w.max = 20;
    b.addWait("wait.n64.exp2", w);

    obs::StageOccupancyProfile occ;
    occ.sample("stage0", 0, 0.25);
    b.addOccupancy(occ);

    obs::InvalFanoutProfile inval;
    inval.record(obs::AddressClass::SyncCounter, 5);
    b.addInvalFanout(inval);

    const std::string json = b.json();
    EXPECT_NE(json.find("\"schema\":\"absync.profile.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"label\":\"flag\""), std::string::npos);
    EXPECT_NE(json.find("\"contention\":0.75"), std::string::npos);
    EXPECT_NE(json.find("\"wait.n64.exp2\":{\"count\":2"),
              std::string::npos);
    if (obs::kTelemetryEnabled) {
        EXPECT_NE(json.find("\"stage0\":{\"mean\":0.25,\"peak\":0.25,"
                            "\"samples\":[[0,0.25]]}"),
                  std::string::npos);
        EXPECT_NE(json.find("\"sync_counter\":{\"events\":1,"
                            "\"messages\":5"),
                  std::string::npos);
    } else {
        // Gated recorders hand the builder nothing.
        EXPECT_NE(json.find("\"occupancy\":{}"), std::string::npos);
        EXPECT_NE(json.find("\"inval_fanout\":{}"),
                  std::string::npos);
    }
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::jsonEscape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}
