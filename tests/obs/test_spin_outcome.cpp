/**
 * @file
 * Regression tests for the spinForUntil / SchedHook::pauseUntil slept
 * contract: a deadline-clamped wait must report (and count) the
 * cycles actually slept, not the interval it asked for.  Before this
 * contract, SpinBackoff only knew the requested delay, so deadline-
 * cut waits were over-counted — by telemetry and by the adaptive
 * barrier's window estimator alike.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/counters.hpp"
#include "runtime/wait_result.hpp"
#include "testing/virtual_sched.hpp"

namespace rt = absync::runtime;
namespace vt = absync::testing;
namespace obs = absync::obs;

TEST(SpinOutcome, DeadlineCutReportsActualSleep)
{
    vt::VirtualSched sched;
    rt::SpinOutcome cut, full, expired;
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&](std::uint32_t) {
        cut = rt::spinForUntil(10000, sched.deadlineIn(500));
        full = rt::spinForUntil(300, sched.deadlineIn(100000));
        expired = rt::spinForUntil(400, sched.deadlineIn(0));
    });
    vt::RandomDecider decider(1);
    const vt::RunRecord rec = sched.run(bodies, decider);
    ASSERT_TRUE(rec.completed) << rec.failure;

    EXPECT_FALSE(cut.completed);
    EXPECT_EQ(cut.requested, 10000u);
    EXPECT_EQ(cut.slept, 500u); // exactly the virtual headroom

    EXPECT_TRUE(full.completed);
    EXPECT_EQ(full.requested, 300u);
    EXPECT_EQ(full.slept, 300u);

    // Already-expired deadline: no sleep at all, just the report.
    EXPECT_FALSE(expired.completed);
    EXPECT_EQ(expired.slept, 0u);
}

TEST(SpinOutcome, BackoffCountersRecordRequestedAndWaited)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    vt::VirtualSched sched;
    auto slab = std::make_shared<obs::SyncCounters>();
    std::vector<vt::VirtualSched::Body> bodies;
    bodies.push_back([&, slab](std::uint32_t) {
        obs::ScopedCounters sc(slab.get());
        rt::spinForUntil(10000, sched.deadlineIn(500));
        rt::spinFor(250);
    });
    vt::RandomDecider decider(2);
    const vt::RunRecord rec = sched.run(bodies, decider);
    ASSERT_TRUE(rec.completed) << rec.failure;

    const obs::CounterSnapshot c = slab->snapshot();
    // The clamped wait: 10000 asked, 500 served; the plain spin adds
    // 250 to both sides.  Nothing is double-counted.
    EXPECT_EQ(c.backoffRequested, 10000u + 250u);
    EXPECT_EQ(c.backoffWaited, 500u + 250u);
}

TEST(SpinOutcome, NativePathSleepsFullIntervalBeforeDeadline)
{
    // No hook installed: a roomy deadline must not shorten the spin,
    // and the outcome reports the full interval as slept.
    const rt::SpinOutcome r = rt::spinForUntil(
        2048, rt::deadlineAfter(std::chrono::seconds(30)));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.requested, 2048u);
    EXPECT_EQ(r.slept, 2048u);
}

TEST(SpinOutcome, NativePathStopsAtExpiredDeadline)
{
    const rt::SpinOutcome r = rt::spinForUntil(
        std::uint64_t{1} << 40,
        rt::deadlineAfter(std::chrono::nanoseconds(1)));
    EXPECT_FALSE(r.completed);
    EXPECT_LT(r.slept, std::uint64_t{1} << 40);
    EXPECT_EQ(r.requested, std::uint64_t{1} << 40);
}
